//===- tests/robustness_test.cpp - Fault injection & graceful degradation -===//
///
/// The robustness suite for the compilation pipeline (docs/ROBUSTNESS.md):
///
///  * Structured diagnostics: serial and parallel compiles of the same bad
///    module report the SAME first error (code, function index, symbol,
///    message) — deterministically, for every thread count.
///  * Graceful degradation: a module with K bad functions still compiles
///    every good function (byte-identical to a serial compile of the good
///    subset), with exactly K precise diagnostics, and the pipeline stays
///    reusable and allocation-free afterwards.
///  * Verifier gate: the adversarial genMalformed corpus is rejected by
///    the tir/uir verifier pre-pass on every entry point (serial and
///    parallel, x64 and a64) and never reaches the emitter.
///  * Fault sweep (only in TPDE_FAULT_INJECTION builds): every registered
///    fault site, across thread counts {1,2,4,8}, either fully recovers
///    (byte-identical output) or fails with one clean structured error —
///    never a crash — and the pool compiles cleanly once disarmed.
///
/// The ASan/UBSan and TSan CI jobs run this binary with fault injection
/// compiled in.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "support/AllocCounter.h"
#include "support/FaultInjector.h"
#include "tir/Verifier.h"
#include "tpde_tir/ParallelCompiler.h"
#include "uir/ParallelCompiler.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using support::CompileErr;
using support::CompileStatus;
using support::FaultInjector;
using support::FaultSite;

namespace {

tir::Module makeModule(u64 Seed, u32 NumFuncs) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = true;
  P.CallPct = 12; // cross-shard references under failure
  workloads::genModule(M, P);
  return M;
}

/// Makes function \p FuncIdx uncompilable (Op::None has no instruction
/// compiler in any back-end) while keeping it verifier-clean and
/// structurally valid. Returns the sabotaged value index.
u32 sabotage(tir::Module &M, u32 FuncIdx) {
  tir::Function &F = M.Funcs[FuncIdx];
  for (u32 V = 0; V < F.Values.size(); ++V) {
    tir::Value &Val = F.Values[V];
    if (Val.Kind == tir::ValKind::Inst && Val.Opcode == tir::Op::Add) {
      Val.Opcode = tir::Op::None;
      return V;
    }
  }
  ADD_FAILURE() << "function " << FuncIdx << " has no Add to sabotage";
  return ~0u;
}

std::vector<u8> textOf(const asmx::Assembler &A) {
  return {A.text().Data.begin(), A.text().Data.end()};
}

std::vector<u8> roOf(const asmx::Assembler &A) {
  const asmx::Section &RO = A.section(asmx::SecKind::ROData);
  return {RO.Data.begin(), RO.Data.end()};
}

/// The cross-entry-point determinism contract: everything except the
/// shard index (meaningless for a serial compile) must agree.
void expectSameDiagnostic(const CompileStatus &A, const CompileStatus &B) {
  EXPECT_EQ(A.Err, B.Err);
  EXPECT_EQ(A.Func, B.Func);
  EXPECT_EQ(A.Symbol, B.Symbol);
  EXPECT_EQ(A.Message, B.Message);
}

} // namespace

// --- Structured diagnostics ------------------------------------------------

TEST(StructuredDiag, SerialReportsPreciseFunctionDiagnostic) {
  tir::Module M = makeModule(17, 8);
  sabotage(M, 3);
  asmx::Assembler Asm;
  CompileStatus St;
  EXPECT_FALSE(tpde_tir::compileModuleX64(M, Asm, /*Verify=*/false, &St));
  EXPECT_EQ(St.Err, CompileErr::UnsupportedInst);
  EXPECT_EQ(St.Func, 3u);
  EXPECT_EQ(St.Symbol, "f3");
  EXPECT_NE(St.Message.find("f3"), std::string::npos) << St.Message;
  EXPECT_EQ(St.Shard, ~0u) << "serial compiles have no shard";
}

/// The satellite-2 regression: the first reported error is keyed by shard
/// order, never thread arrival — with two bad functions in different
/// shards, every thread count (and the serial compile) must name the
/// lower-index one first, with an identical message.
TEST(StructuredDiag, FirstErrorIsDeterministicAcrossThreadCounts) {
  tir::Module M = makeModule(29, 12);
  sabotage(M, 2);
  sabotage(M, 9); // a later shard; a racing thread may well fail it first

  asmx::Assembler SerialAsm;
  CompileStatus SerialSt;
  ASSERT_FALSE(
      tpde_tir::compileModuleX64(M, SerialAsm, /*Verify=*/false, &SerialSt));
  ASSERT_EQ(SerialSt.Func, 2u);

  std::vector<CompileStatus> RefDiags;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = Threads;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    EXPECT_FALSE(PC.compile(Out)) << "threads=" << Threads;
    expectSameDiagnostic(PC.status(), SerialSt);
    ASSERT_EQ(PC.diagnostics().size(), 2u) << "threads=" << Threads;
    EXPECT_EQ(PC.diagnostics()[0].Func, 2u);
    EXPECT_EQ(PC.diagnostics()[1].Func, 9u);
    EXPECT_EQ(PC.diagnostics()[1].Symbol, "f9");
    // The whole diagnostics list — including shard attribution, which is
    // a pure function of the module — must be identical per thread count.
    if (RefDiags.empty()) {
      RefDiags.assign(PC.diagnostics().begin(), PC.diagnostics().end());
    } else {
      for (size_t I = 0; I < RefDiags.size(); ++I) {
        expectSameDiagnostic(PC.diagnostics()[I], RefDiags[I]);
        EXPECT_EQ(PC.diagnostics()[I].Shard, RefDiags[I].Shard)
            << "threads=" << Threads;
      }
    }
  }
}

// --- Graceful degradation --------------------------------------------------

/// A module with K bad functions compiles all good functions: the merged
/// .text/.rodata must be byte-identical to a serial compile of the module
/// with the bad functions demoted to declarations, with exactly K
/// diagnostics — for every thread count.
TEST(GracefulDegradation, GoodSubsetByteIdenticalToDeclarationCompile) {
  tir::Module M = makeModule(43, 14);
  sabotage(M, 4);
  sabotage(M, 11);

  tir::Module Subset = M;
  Subset.Funcs[4].IsDeclaration = true;
  Subset.Funcs[11].IsDeclaration = true;
  asmx::Assembler SubsetAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(Subset, SubsetAsm));
  std::vector<u8> WantText = textOf(SubsetAsm);
  std::vector<u8> WantRO = roOf(SubsetAsm);
  ASSERT_FALSE(WantText.empty());

  for (unsigned Threads : {1u, 4u}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = Threads;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    EXPECT_FALSE(PC.compile(Out)) << "threads=" << Threads;
    EXPECT_EQ(PC.diagnostics().size(), 2u);
    EXPECT_EQ(textOf(Out), WantText)
        << "good-subset .text diverged from the declaration compile, "
           "threads=" << Threads;
    EXPECT_EQ(roOf(Out), WantRO) << "threads=" << Threads;
  }
}

/// Same property through the a64 instantiation of the shared driver.
TEST(GracefulDegradation, A64GoodSubsetByteIdenticalToDeclarationCompile) {
  tir::Module M = makeModule(43, 10);
  sabotage(M, 5);

  tir::Module Subset = M;
  Subset.Funcs[5].IsDeclaration = true;
  asmx::Assembler SubsetAsm;
  ASSERT_TRUE(tpde_tir::compileModuleA64(Subset, SubsetAsm));

  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 2;
  tpde_tir::ParallelModuleCompilerA64 PC(M, Opts);
  asmx::Assembler Out;
  EXPECT_FALSE(PC.compile(Out));
  ASSERT_EQ(PC.diagnostics().size(), 1u);
  EXPECT_EQ(PC.diagnostics()[0].Func, 5u);
  EXPECT_EQ(PC.diagnostics()[0].Err, CompileErr::UnsupportedInst);
  EXPECT_EQ(textOf(Out), textOf(SubsetAsm));
  EXPECT_EQ(roOf(Out), roOf(SubsetAsm));
}

/// After a failed compile the pipeline must stay fully usable: repeated
/// failing compiles report identical diagnostics, fixing the module makes
/// the same pool produce the clean serial bytes, and the recovered pool
/// reaches the zero-allocation steady state of docs/PERF.md.
TEST(GracefulDegradation, PoolStaysReusableAndAllocationFreeAfterFailure) {
  tir::Module M = makeModule(59, 10);
  u32 Sabotaged = sabotage(M, 6);
  ASSERT_NE(Sabotaged, ~0u);

  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1; // one worker sees every shard: exact steady state
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  ASSERT_FALSE(PC.compile(Out));
  CompileStatus First = PC.status();
  ASSERT_FALSE(PC.compile(Out));
  expectSameDiagnostic(PC.status(), First);

  // Heal the module; the same pool must now match the serial compile.
  M.Funcs[6].Values[Sabotaged].Opcode = tir::Op::Add;
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_TRUE(PC.status().ok());
  EXPECT_EQ(textOf(Out), textOf(SerialAsm));

  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "pool did not return to the allocation-free steady state after a "
         "failed compile (" << W.newBytes() << " bytes)";
}

// --- Verifier gate + adversarial corpus (satellite 3) ----------------------

/// Every genMalformed mutation class is caught by the verifier pre-pass on
/// every entry point — serial and parallel, x64 and a64 — with a
/// VerifyFailed status, and the output assembler stays empty: malformed IR
/// never reaches the emitter.
TEST(VerifierGate, MalformedCorpusNeverReachesTheEmitter) {
  for (u32 K = 0; K < workloads::NumMalformKinds; ++K) {
    auto Kind = static_cast<workloads::MalformKind>(K);
    SCOPED_TRACE(workloads::malformKindName(Kind));
    tir::Module M = makeModule(5, 3); // valid base: the gate must find the
    workloads::genMalformed(M, Kind); // one bad apple among good functions

    std::string Errors;
    EXPECT_FALSE(tir::verifyModule(M, Errors));
    EXPECT_FALSE(Errors.empty());

    asmx::Assembler SerialX64;
    CompileStatus St;
    EXPECT_FALSE(tpde_tir::compileModuleX64(M, SerialX64, /*Verify=*/true,
                                            &St));
    EXPECT_EQ(St.Err, CompileErr::VerifyFailed);
    EXPECT_FALSE(St.Message.empty());
    EXPECT_EQ(SerialX64.text().size(), 0u) << "x64 emitter ran on bad IR";

    asmx::Assembler SerialA64;
    EXPECT_FALSE(tpde_tir::compileModuleA64(M, SerialA64, /*Verify=*/true,
                                            &St));
    EXPECT_EQ(St.Err, CompileErr::VerifyFailed);
    EXPECT_EQ(SerialA64.text().size(), 0u) << "a64 emitter ran on bad IR";

    for (unsigned Threads : {1u, 4u}) {
      asmx::Assembler Out;
      EXPECT_FALSE(tpde_tir::compileModuleX64Parallel(M, Out, Threads,
                                                      /*Verify=*/true, &St));
      EXPECT_EQ(St.Err, CompileErr::VerifyFailed) << "threads=" << Threads;
      EXPECT_EQ(Out.text().size(), 0u) << "threads=" << Threads;
    }
    asmx::Assembler OutA64;
    EXPECT_FALSE(tpde_tir::compileModuleA64Parallel(M, OutA64, 2,
                                                    /*Verify=*/true, &St));
    EXPECT_EQ(St.Err, CompileErr::VerifyFailed);
    EXPECT_EQ(OutA64.text().size(), 0u);
  }
}

/// The gate must not reject valid modules, and running with the verifier
/// on must not change the produced bytes.
TEST(VerifierGate, ValidModulePassesWithVerifyOn) {
  tir::Module M = makeModule(7, 6);
  asmx::Assembler Plain, Verified;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, Plain));
  CompileStatus St;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, Verified, /*Verify=*/true, &St));
  EXPECT_TRUE(St.ok());
  EXPECT_EQ(textOf(Verified), textOf(Plain));

  asmx::Assembler Par;
  ASSERT_TRUE(
      tpde_tir::compileModuleX64Parallel(M, Par, 4, /*Verify=*/true, &St));
  EXPECT_TRUE(St.ok());
  EXPECT_EQ(textOf(Par), textOf(Plain));
}

// --- UIR verifier ----------------------------------------------------------

namespace {

uir::UModule makeQueryModule(u64 Seed, u32 NumQueries) {
  workloads::QueryProfile P;
  P.Seed = Seed;
  P.NumQueries = NumQueries;
  uir::UModule M;
  workloads::genQueryModule(M, P);
  return M;
}

/// Asserts that the mutated module is rejected by uir::verifyModule and by
/// the Verify-gated serial and parallel entry points before any codegen.
void expectUirRejected(uir::UModule &M, const char *What) {
  SCOPED_TRACE(What);
  std::string Errors;
  EXPECT_FALSE(uir::verifyModule(M, Errors));
  EXPECT_FALSE(Errors.empty());

  asmx::Assembler Serial;
  CompileStatus St;
  EXPECT_FALSE(uir::compileTpdeUir(M, Serial, /*Verify=*/true, &St));
  EXPECT_EQ(St.Err, CompileErr::VerifyFailed);
  EXPECT_EQ(Serial.text().size(), 0u) << "UIR emitter ran on bad IR";

  asmx::Assembler Par;
  EXPECT_FALSE(
      uir::compileModuleUirParallel(M, Par, 2, /*Verify=*/true, &St));
  EXPECT_EQ(St.Err, CompileErr::VerifyFailed);
  EXPECT_EQ(Par.text().size(), 0u);
}

} // namespace

TEST(UirVerifier, MutationsAreCaughtBeforeCodegen) {
  { // Dangling operand: an instruction pointing past the value table.
    uir::UModule M = makeQueryModule(3, 6);
    uir::UFunc &F = M.Funcs[2];
    bool Mutated = false;
    for (uir::UBlock &B : F.Blocks) {
      for (u32 V : B.Insts) {
        if (F.Vals[V].Ops[0] != ~0u) {
          F.Vals[V].Ops[0] = static_cast<u32>(F.Vals.size()) + 100;
          Mutated = true;
          break;
        }
      }
      if (Mutated)
        break;
    }
    ASSERT_TRUE(Mutated);
    expectUirRejected(M, "dangling operand");
  }
  { // Phi incoming block disagrees with the loop header's predecessors.
    uir::UModule M = makeQueryModule(3, 6);
    uir::UFunc &F = M.Funcs[1];
    ASSERT_FALSE(F.Blocks[1].Phis.empty()) << "query loop has no phis";
    uir::UInst &Phi = F.Vals[F.Blocks[1].Phis[0]];
    Phi.InBlock[0] = 2; // exit block is not a predecessor of the header
    expectUirRejected(M, "phi/pred mismatch");
  }
  { // Terminator/successor mismatch.
    uir::UModule M = makeQueryModule(3, 6);
    M.Funcs[0].Blocks[0].Succs.clear(); // entry ends in Br with no target
    expectUirRejected(M, "bad terminator successors");
  }
  { // Duplicate strong query names.
    uir::UModule M = makeQueryModule(3, 4);
    uir::QueryPlan P;
    P.Name = M.Funcs[1].Name; // collides
    P.Preds = {{0, uir::UOp::CmpLt, 7}};
    uir::compilePlan(M, P);
    expectUirRejected(M, "duplicate query name");
  }
}

TEST(UirVerifier, ValidQueryModulePassesWithVerifyOn) {
  uir::UModule M = makeQueryModule(11, 12);
  asmx::Assembler Plain, Verified;
  ASSERT_TRUE(uir::compileTpdeUir(M, Plain));
  CompileStatus St;
  ASSERT_TRUE(uir::compileTpdeUir(M, Verified, /*Verify=*/true, &St));
  EXPECT_TRUE(St.ok());
  EXPECT_EQ(textOf(Verified), textOf(Plain));

  asmx::Assembler Par;
  ASSERT_TRUE(
      uir::compileModuleUirParallel(M, Par, 4, /*Verify=*/true, &St));
  EXPECT_TRUE(St.ok());
  EXPECT_EQ(textOf(Par), textOf(Plain));
}

// --- Fault sweep (TPDE_FAULT_INJECTION builds only) ------------------------

#if TPDE_FAULT_INJECTION

namespace {

/// RAII guard: no test leaves a site armed behind, even on assertion exit.
struct DisarmOnExit {
  ~DisarmOnExit() { FaultInjector::disarmAll(); }
};

} // namespace

/// The acceptance sweep: every compile-path fault site, for thread counts
/// {1,2,4,8} and two different hit positions, must either fully recover
/// (clean success, byte-identical output) or fail with one structured
/// diagnostic — and the pool must produce the reference bytes on the next
/// clean compile either way.
TEST(FaultSweep, EverySiteEveryThreadCountRecoversOrFailsCleanly) {
  DisarmOnExit Guard;
  tir::Module M = makeModule(31, 16);
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  std::vector<u8> RefText = textOf(SerialAsm);

  const FaultSite CompileSites[] = {FaultSite::ArenaGrow,
                                    FaultSite::ShardCompile,
                                    FaultSite::SymbolCreate,
                                    FaultSite::SectionMerge,
                                    FaultSite::SectionPlace};
  for (FaultSite Site : CompileSites) {
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      for (u64 Nth : {u64(1), u64(5)}) {
        SCOPED_TRACE(std::string(support::faultSiteName(Site)) +
                     " threads=" + std::to_string(Threads) +
                     " nth=" + std::to_string(Nth));
        FaultInjector::disarmAll();
        tpde_tir::ParallelCompileOptions Opts;
        Opts.NumThreads = Threads;
        tpde_tir::ParallelModuleCompiler PC(M, Opts);
        asmx::Assembler Out;
        FaultInjector::arm(Site, Nth);
        bool OK = PC.compile(Out);
        FaultInjector::disarmAll();
        if (OK) {
          // Recovered: the fault was absorbed by the retry pass and the
          // output is indistinguishable from an unfaulted compile.
          EXPECT_TRUE(PC.status().ok());
          EXPECT_TRUE(PC.diagnostics().empty());
          EXPECT_EQ(textOf(Out), RefText);
        } else {
          // Clean structured error; nothing crashed, nothing leaked (the
          // sanitizer jobs enforce the latter).
          EXPECT_NE(PC.status().Err, CompileErr::Ok);
          EXPECT_FALSE(PC.status().Message.empty());
          EXPECT_FALSE(PC.diagnostics().empty());
        }
        // The pool must be reusable after the fault, with clean output.
        ASSERT_TRUE(PC.compile(Out));
        EXPECT_TRUE(PC.status().ok());
        EXPECT_EQ(textOf(Out), RefText) << "post-fault recompile diverged";
      }
    }
  }
}

/// The shard-compile site is always recoverable by construction: the
/// retry pass recompiles the poisoned shard serially, so the compile must
/// SUCCEED with byte-identical output — full graceful degradation.
TEST(FaultSweep, ShardCompileFaultFullyRecovers) {
  DisarmOnExit Guard;
  tir::Module M = makeModule(37, 12);
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));

  for (unsigned Threads : {1u, 4u}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = Threads;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    FaultInjector::arm(FaultSite::ShardCompile);
    ASSERT_TRUE(PC.compile(Out)) << "threads=" << Threads;
    FaultInjector::disarmAll();
    EXPECT_TRUE(PC.diagnostics().empty());
    EXPECT_EQ(textOf(Out), textOf(SerialAsm)) << "threads=" << Threads;
  }
}

/// Pass-2 surgical strike on the in-place emission path. With N shards
/// the section-place site fires exactly N+2 times before the placement
/// pass regardless of thread count (the globals snapshot merge, N shard
/// snapshot merges, the globals merge into the output), so arming hit
/// N+3 lands on the first in-place placement of pass 2. The driver
/// retries the faulted slice once on the calling thread and the fault
/// site fires only once per arm, so the compile must SUCCEED with
/// byte-identical output: the re-placed slice is refilled and the
/// neighboring shards' already-placed bytes stay untouched.
TEST(FaultSweep, SectionPlaceFaultInPassTwoRecoversInPlace) {
  DisarmOnExit Guard;
  tir::Module M = makeModule(53, 24);
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  std::vector<u8> RefText = textOf(SerialAsm);

  for (unsigned Threads : {1u, 4u}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = Threads;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    ASSERT_TRUE(PC.compile(Out)); // clean warm-up fixes the shard count
    ASSERT_GE(PC.shardCount(), 2u)
        << "need at least two shards for the neighbor-corruption check";
    FaultInjector::arm(FaultSite::SectionPlace,
                       static_cast<u64>(PC.shardCount()) + 3);
    ASSERT_TRUE(PC.compile(Out)) << "threads=" << Threads;
    // The site's hit count pins the emission sequence (and proves the
    // armed hit actually fired in pass 2, not past the end): N+2 hits
    // before placement, N placements, one post-barrier retry of the
    // faulted slice — independent of thread count and schedule.
    EXPECT_EQ(FaultInjector::hits(FaultSite::SectionPlace),
              2 * static_cast<u64>(PC.shardCount()) + 3)
        << "threads=" << Threads
        << ": the section-place hit count no longer matches the two-pass "
           "sequence; the armed Nth may not land in pass 2 anymore";
    FaultInjector::disarmAll();
    EXPECT_TRUE(PC.status().ok());
    EXPECT_TRUE(PC.diagnostics().empty());
    EXPECT_EQ(textOf(Out), RefText)
        << "threads=" << Threads
        << ": re-placed slice or its neighbors diverged after the pass-2 "
           "placement fault";
  }
}

/// After a fault + recovery the pool must return to the zero-allocation
/// steady state: the error paths may allocate, the clean path never.
TEST(FaultSweep, SteadyStateIsAllocationFreeAfterRecovery) {
  DisarmOnExit Guard;
  tir::Module M = makeModule(41, 10);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1;
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  ASSERT_TRUE(PC.compile(Out));
  FaultInjector::arm(FaultSite::ShardCompile);
  ASSERT_TRUE(PC.compile(Out)); // recovers via the retry pass
  FaultInjector::disarmAll();
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "recovery left the pool off the allocation-free steady state ("
      << W.newBytes() << " bytes)";
}

/// The JIT-mapping site: map() must refuse with a structured JitMapFailed/
/// FaultInjected status before taking any system resources, and succeed
/// on the next attempt.
TEST(FaultSweep, JitMapFaultIsACleanErrorAndRetrySucceeds) {
  DisarmOnExit Guard;
  tir::Module M = makeModule(47, 6);
  asmx::Assembler Asm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, Asm));

  asmx::JITMapper JIT;
  FaultInjector::arm(FaultSite::JitMap);
  EXPECT_FALSE(JIT.map(Asm));
  FaultInjector::disarmAll();
  EXPECT_EQ(JIT.status().Err, CompileErr::FaultInjected);
  EXPECT_FALSE(JIT.status().Message.empty());

  ASSERT_TRUE(JIT.map(Asm));
  EXPECT_TRUE(JIT.status().ok());
  auto *Fn = reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("main_entry"));
  ASSERT_NE(Fn, nullptr);
  (void)Fn(1, 2); // executable after the faulted attempt
}

/// The UIR instantiation goes through the same driver, so a shard fault
/// must recover there too — the framework property, not a TIR one.
TEST(FaultSweep, UirShardFaultRecovers) {
  DisarmOnExit Guard;
  uir::UModule M = makeQueryModule(19, 24);
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(uir::compileTpdeUir(M, SerialAsm));

  uir::ParallelCompileOptions Opts;
  Opts.NumThreads = 4;
  uir::ParallelModuleCompilerUir PC(M, Opts);
  asmx::Assembler Out;
  FaultInjector::arm(FaultSite::ShardCompile);
  ASSERT_TRUE(PC.compile(Out));
  FaultInjector::disarmAll();
  EXPECT_EQ(textOf(Out), textOf(SerialAsm));
}

#else // !TPDE_FAULT_INJECTION

TEST(FaultSweep, RequiresFaultInjectionBuild) {
  GTEST_SKIP() << "configure with -DTPDE_FAULT_INJECTION=ON to run the "
                  "fault sweep";
}

#endif // TPDE_FAULT_INJECTION
