//===- tests/support_test.cpp - Support library unit tests ----------------===//
///
/// Unit tests for the hot-path support containers (Arena, SmallVector,
/// DenseMap, StringPool, ByteBuffer) plus the state-reuse regression test:
/// recompiling the same module through one compiler instance must produce
/// byte-identical code and perform zero heap allocations (docs/PERF.md).
///
//===----------------------------------------------------------------------===//

#include "support/AllocCounter.h"
#include "support/Arena.h"
#include "support/ByteBuffer.h"
#include "support/DenseMap.h"
#include "support/SmallVector.h"
#include "support/StringPool.h"
#include "support/Sync.h"
#include "tir/Builder.h"
#include "tpde_tir/TirCompilerX64.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using namespace tpde::support;

// --- Arena -----------------------------------------------------------------

TEST(Arena, BumpAllocatesAndAligns) {
  Arena A(128);
  void *P1 = A.alloc(10, 8);
  void *P2 = A.alloc(10, 8);
  EXPECT_NE(P1, P2);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 8, 0u);
  void *P64 = A.alloc(1, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P64) % 64, 0u);
  EXPECT_EQ(A.bytesAllocated(), 21u);
}

TEST(Arena, OversizedRequestsGetDedicatedSlab) {
  Arena A(64);
  void *Big = A.alloc(1000, 8);
  ASSERT_NE(Big, nullptr);
  // The big slab must not break subsequent small allocations.
  void *Small = A.alloc(8, 8);
  ASSERT_NE(Small, nullptr);
}

TEST(Arena, ResetRetainsSlabs) {
  Arena A(256);
  for (int I = 0; I < 100; ++I)
    A.alloc(32, 8);
  size_t Slabs = A.slabCount();
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  support::AllocWatch W;
  for (int I = 0; I < 100; ++I)
    A.alloc(32, 8);
  EXPECT_EQ(W.newCalls(), 0u) << "post-reset allocation must reuse slabs";
  EXPECT_EQ(A.slabCount(), Slabs);
}

TEST(Arena, ScopeRewinds) {
  Arena A(256);
  A.alloc(16, 8);
  size_t Before = A.bytesAllocated();
  {
    Arena::Scope S(A);
    A.alloc(100, 8);
    EXPECT_GT(A.bytesAllocated(), Before);
  }
  EXPECT_EQ(A.bytesAllocated(), Before);
}

// --- SmallVector -----------------------------------------------------------

TEST(SmallVector, InlineStorageAvoidsHeap) {
  support::AllocWatch W;
  SmallVector<int, 8> V;
  for (int I = 0; I < 8; ++I)
    V.push_back(I);
  EXPECT_EQ(W.newCalls(), 0u);
  EXPECT_EQ(V.size(), 8u);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(SmallVector, GrowsBeyondInline) {
  SmallVector<int, 4> V;
  for (int I = 0; I < 100; ++I)
    V.push_back(I);
  EXPECT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
  V.clear();
  EXPECT_TRUE(V.empty());
  EXPECT_GE(V.capacity(), 100u) << "clear must retain capacity";
}

TEST(SmallVector, MoveOnlyElements) {
  SmallVector<std::unique_ptr<int>, 2> V;
  V.push_back(std::make_unique<int>(1));
  V.push_back(std::make_unique<int>(2));
  V.push_back(std::make_unique<int>(3)); // forces growth with moves
  EXPECT_EQ(*V[0], 1);
  EXPECT_EQ(*V[2], 3);
  SmallVector<std::unique_ptr<int>, 2> W = std::move(V);
  EXPECT_EQ(*W[1], 2);
  EXPECT_TRUE(V.empty());
}

TEST(SmallVector, ResizeAndAssign) {
  SmallVector<std::string, 2> V;
  V.assign(5, "x");
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V[4], "x");
  V.resize(2);
  EXPECT_EQ(V.size(), 2u);
  V.resize(4);
  EXPECT_EQ(V[3], "");
}

// --- DenseMap --------------------------------------------------------------

TEST(DenseMap, InsertFindRoundTrip) {
  DenseMap<u64, u32> M;
  for (u64 K = 0; K < 1000; ++K)
    M.insert(K * 0x9E3779B9u, static_cast<u32>(K));
  EXPECT_EQ(M.size(), 1000u);
  for (u64 K = 0; K < 1000; ++K) {
    u32 *V = M.find(K * 0x9E3779B9u);
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, K);
  }
  EXPECT_EQ(M.find(0xDEADBEEFDEADBEEFull), nullptr);
}

TEST(DenseMap, InsertIsFirstWriteWins) {
  DenseMap<u32, int> M;
  auto R1 = M.insert(7, 1);
  EXPECT_TRUE(R1.Inserted);
  auto R2 = M.insert(7, 2);
  EXPECT_FALSE(R2.Inserted);
  EXPECT_EQ(M.at(7), 1);
  M[7] = 5;
  EXPECT_EQ(M.at(7), 5);
}

TEST(DenseMap, ClearRetainsCapacity) {
  DenseMap<u32, u32> M;
  for (u32 K = 0; K < 500; ++K)
    M.insert(K, K);
  M.clear();
  EXPECT_TRUE(M.empty());
  support::AllocWatch W;
  for (u32 K = 0; K < 500; ++K)
    M.insert(K, K);
  EXPECT_EQ(W.newCalls(), 0u) << "post-clear insert must not allocate";
}

TEST(DenseMap, AdversarialKeysStillWork) {
  // Sequential and all-equal-low-bit keys must not degrade correctness.
  DenseMap<u64, u64> M;
  for (u64 K = 0; K < 256; ++K)
    M.insert(K << 32, K);
  for (u64 K = 0; K < 256; ++K)
    EXPECT_EQ(M.at(K << 32), K);
}

// --- StringPool ------------------------------------------------------------

TEST(StringPool, InternDeduplicates) {
  StringPool P;
  auto A = P.intern("hello");
  auto B = P.intern("world");
  auto C = P.intern("hello");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(P.str(A), "hello");
  EXPECT_EQ(P.str(B), "world");
  EXPECT_EQ(P.count(), 2u);
}

TEST(StringPool, LookupDoesNotIntern) {
  StringPool P;
  EXPECT_EQ(P.lookup("missing"), StringPool::InvalidId);
  auto Id = P.intern("present");
  EXPECT_EQ(P.lookup("present"), Id);
  EXPECT_EQ(P.count(), 1u);
}

TEST(StringPool, ViewsStayStableAcrossGrowth) {
  StringPool P;
  std::string_view First = P.str(P.intern("first"));
  std::vector<std::string> Keep;
  for (int I = 0; I < 5000; ++I)
    Keep.push_back("name_" + std::to_string(I));
  for (const std::string &S : Keep)
    P.intern(S);
  EXPECT_EQ(First, "first") << "slab storage must never move";
  EXPECT_EQ(P.str(P.lookup("name_4999")), "name_4999");
}

TEST(StringPool, ReinterningIsAllocationFree) {
  StringPool P;
  for (int I = 0; I < 100; ++I)
    P.intern("sym_" + std::to_string(I));
  support::AllocWatch W;
  for (int I = 0; I < 100; ++I)
    P.intern("sym_" + std::to_string(I) /* temporary may allocate */);
  // The pool itself must not allocate; only the temporary key strings may.
  // Small-string optimization keeps these keys off the heap.
  EXPECT_EQ(W.newCalls(), 0u);
}

// --- ByteBuffer ------------------------------------------------------------

TEST(ByteBuffer, AppendAndCursor) {
  ByteBuffer B;
  B.push_back(0xAA);
  const u8 Arr[3] = {1, 2, 3};
  B.append(Arr, 3);
  B.ensure(16);
  u8 *P = B.writableEnd();
  *P++ = 9;
  *P++ = 8;
  B.setEnd(P);
  ASSERT_EQ(B.size(), 6u);
  EXPECT_EQ(B[0], 0xAA);
  EXPECT_EQ(B[3], 3);
  EXPECT_EQ(B[5], 8);
  B.clear();
  EXPECT_TRUE(B.empty());
  EXPECT_GT(B.capacity(), 0u);
}

// --- State reuse regression ------------------------------------------------

namespace {

std::vector<u8> textBytes(const asmx::Assembler &Asm) {
  const asmx::Section &T = Asm.text();
  return std::vector<u8>(T.Data.begin(), T.Data.end());
}

} // namespace

/// Compiling the same module twice through ONE compiler instance (with the
/// assembler reset in between) must yield byte-identical machine code and,
/// once warm, zero heap allocations — the tentpole property of the hot-path
/// memory overhaul.
TEST(StateReuse, RecompileIsByteIdenticalAndAllocationFree) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 42;
  P.NumFuncs = 12;
  P.SSAForm = true;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);

  ASSERT_TRUE(Compiler.compile());
  ASSERT_FALSE(Asm.hasError()) << Asm.errorMessage();
  std::vector<u8> First = textBytes(Asm);

  // Second compile: warm but must match the first bit for bit.
  Asm.reset();
  ASSERT_TRUE(Compiler.compile());
  std::vector<u8> Second = textBytes(Asm);
  EXPECT_EQ(First, Second);

  // Third compile: every buffer is at its high-water mark; the compile
  // must not touch the heap at all.
  Asm.reset();
  support::AllocWatch W;
  ASSERT_TRUE(Compiler.compile());
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
  EXPECT_EQ(textBytes(Asm), First);
}

/// Recompiling into the SAME assembler without reset() defines every
/// function symbol twice; the module compile must report failure instead
/// of silently emitting relocations against the first definition.
TEST(StateReuse, RecompileWithoutResetFailsWithDuplicateSymbols) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 3;
  P.NumFuncs = 2;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  ASSERT_TRUE(Compiler.compile());
  EXPECT_FALSE(Compiler.compile()) << "missing Assembler::reset() between "
                                      "compiles must surface as failure";
  EXPECT_TRUE(Asm.hasError());
}

/// The O0-flavor IR (stack locals, loads/stores) exercises different
/// instruction compilers; it must reach the same steady state.
TEST(StateReuse, O0FlavorAlsoAllocationFree) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 7;
  P.NumFuncs = 6;
  P.SSAForm = false;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  for (int I = 0; I < 2; ++I) {
    ASSERT_TRUE(Compiler.compile());
    Asm.reset();
  }
  support::AllocWatch W;
  ASSERT_TRUE(Compiler.compile());
  EXPECT_EQ(W.newCalls(), 0u);
}

/// Module-level symbol batching: compileReuse() recompiles into the same
/// assembler WITHOUT Assembler::reset(), rewinding sections but keeping
/// the interned symbol table, so the per-module createSymbol pass is
/// skipped. Must be byte-identical to the reset-based path, allocation
/// free, and must actually stay on the fast path (the reset epoch never
/// moves).
TEST(StateReuse, SymbolBatchedRecompileIsByteIdenticalAndFast) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 19;
  P.NumFuncs = 10;
  P.SSAForm = true;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);

  ASSERT_TRUE(Compiler.compile());
  std::vector<u8> First = textBytes(Asm);
  u32 Symbols = Asm.symbolCount();
  u64 Epoch = Asm.resetEpoch();

  // No reset() between compiles: compileReuse rewinds internally.
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_EQ(textBytes(Asm), First);
  EXPECT_EQ(Asm.symbolCount(), Symbols)
      << "recompile must not grow the symbol table";
  EXPECT_EQ(Asm.resetEpoch(), Epoch)
      << "fast path must not fall back to a full reset";

  // Steady state: zero allocations, still identical.
  ASSERT_TRUE(Compiler.compileReuse());
  support::AllocWatch W;
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_EQ(W.newCalls(), 0u)
      << "symbol-batched recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
  EXPECT_EQ(textBytes(Asm), First);
  EXPECT_EQ(Asm.resetEpoch(), Epoch);
}

/// The fast path must disengage when the assembler is reset underneath
/// the compiler (cache invalidation by epoch), and re-arm afterwards.
TEST(StateReuse, SymbolBatchingInvalidatesOnExternalReset) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 21;
  P.NumFuncs = 4;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  ASSERT_TRUE(Compiler.compile());
  std::vector<u8> First = textBytes(Asm);

  Asm.reset(); // external reset: the cached symbol table is gone
  ASSERT_TRUE(Compiler.compileReuse()) << "must fall back to a full compile";
  EXPECT_EQ(textBytes(Asm), First);
  u64 Epoch = Asm.resetEpoch();
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_EQ(Asm.resetEpoch(), Epoch) << "fast path must re-arm after fallback";
  EXPECT_EQ(textBytes(Asm), First);
}

/// Mutating the module's global list between recompiles must disengage
/// the symbol-reuse fast path (stale GlobalSyms would otherwise be
/// indexed out of bounds) and fall back to a clean full rebuild.
TEST(StateReuse, SymbolBatchingInvalidatesOnGlobalCountChange) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 31;
  P.NumFuncs = 3;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  ASSERT_TRUE(Compiler.compile());
  ASSERT_TRUE(Compiler.compileReuse());
  u64 FastEpoch = Asm.resetEpoch();

  tir::Global G;
  G.Name = "late_global";
  G.Size = 16;
  G.Init = {1, 2, 3, 4};
  M.Globals.push_back(G);

  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_NE(Asm.resetEpoch(), FastEpoch)
      << "global-count change must force the full-reset fallback";
  EXPECT_TRUE(Asm.findSymbol("late_global").isValid());
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_TRUE(Asm.findSymbol("late_global").isValid())
      << "fast path must re-arm with the new global registered";
}

/// A sparse shard compile (compileRange) leaves the assembler without the
/// dense module-symbol prefix, so it must disarm the symbol-batching fast
/// path: a following compileReuse() has to fall back to a full rebuild
/// instead of rewinding to a watermark that no longer describes the
/// table (which would silently corrupt symbol identities).
TEST(StateReuse, SparseRangeCompileDisarmsSymbolBatching) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 43;
  P.NumFuncs = 6;
  P.SSAForm = true;
  P.CallPct = 20;
  workloads::genModule(M, P);

  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  ASSERT_TRUE(Compiler.compile());
  std::vector<u8> First = textBytes(Asm);
  u64 Epoch = Asm.resetEpoch();

  // Sparse mode: materializes only the shard's symbols, no module prefix.
  ASSERT_TRUE(Compiler.compileRange(0, 2));
  EXPECT_EQ(Asm.resetEpoch(), Epoch) << "sparse rewind must not reset";

  // The reuse entry point must detect the foreign table and rebuild.
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_NE(Asm.resetEpoch(), Epoch)
      << "stale watermark reused over a sparse table";
  EXPECT_EQ(textBytes(Asm), First);
  // And the fast path re-arms afterwards.
  u64 Armed = Asm.resetEpoch();
  ASSERT_TRUE(Compiler.compileReuse());
  EXPECT_EQ(Asm.resetEpoch(), Armed);
  EXPECT_EQ(textBytes(Asm), First);
}

// --- Sync wrappers (support/Sync.h) ----------------------------------------

TEST(Sync, MutexLockGuardBasics) {
  tpde::Mutex M;
  int Guarded = 0; // not annotated: gcc test TU, annotations are no-ops
  {
    tpde::LockGuard L(M);
    Guarded = 1;
  }
  EXPECT_TRUE(M.tryLock());
  M.unlock();
  EXPECT_EQ(Guarded, 1);
}

TEST(Sync, UniqueLockRelocks) {
  tpde::Mutex M;
  tpde::UniqueLock L(M);
  EXPECT_TRUE(L.held());
  L.unlock();
  EXPECT_FALSE(L.held());
  EXPECT_TRUE(M.tryLock()) << "unlock really released the mutex";
  M.unlock();
  L.lock();
  EXPECT_TRUE(L.held());
}

TEST(Sync, CondVarWaitAndWaitFor) {
  tpde::Mutex M;
  tpde::CondVar CV;
  bool Ready = false;
  tpde::Thread T([&] {
    tpde::LockGuard L(M);
    Ready = true;
    CV.notify_one();
  });
  {
    tpde::LockGuard L(M);
    while (!Ready)
      CV.wait(M);
  }
  T.join();
  EXPECT_TRUE(Ready);
  // waitFor returns after the timeout without the predicate flipping and
  // leaves the mutex held (relockable afterwards by the same scope).
  {
    tpde::LockGuard L(M);
    CV.waitFor(M, 1'000'000); // 1ms
    EXPECT_TRUE(Ready);
  }
}

TEST(Sync, HardwareConcurrencyIsPositive) {
  EXPECT_GE(tpde::hardwareConcurrency(), 1u);
}

#ifndef NDEBUG
// The dynamic lock-order backstop (LockRank in support/Sync.h) mirrors the
// statically annotated ClaimsMtx-before-Cache.Mtx order for compilers that
// cannot check the annotations (GCC). Debug-only: compiled out with NDEBUG.
TEST(SyncDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        tpde::Mutex Claims{tpde::LockRank::ServiceClaims};
        tpde::Mutex Cache{tpde::LockRank::ServiceCache};
        tpde::LockGuard A(Cache);
        tpde::LockGuard B(Claims); // inversion: rank 10 after rank 20
      },
      "lock-order violation");
}

TEST(SyncDeathTest, CorrectRankOrderDoesNotAbort) {
  tpde::Mutex Claims{tpde::LockRank::ServiceClaims};
  tpde::Mutex Cache{tpde::LockRank::ServiceCache};
  tpde::LockGuard A(Claims);
  tpde::LockGuard B(Cache);
  SUCCEED();
}

TEST(SyncDeathTest, UnrankedLocksAreExemptFromOrdering) {
  tpde::Mutex Ranked{tpde::LockRank::ServiceCache};
  tpde::Mutex Leaf; // LockRank::None
  tpde::LockGuard A(Ranked);
  tpde::LockGuard B(Leaf); // leaf under a ranked lock: allowed
  SUCCEED();
}
#endif // !NDEBUG
