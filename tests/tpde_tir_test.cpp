//===- tests/tpde_tir_test.cpp - End-to-end TPDE-TIR backend tests --------===//
///
/// Compiles TIR functions with the TPDE back-end, maps them into memory,
/// executes them on the host, and checks results (in several cases against
/// the reference interpreter).
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "tir/Builder.h"
#include "tir/Interp.h"
#include "tir/Verifier.h"
#include "tpde_tir/TirCompilerX64.h"

#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::tir;

namespace {

struct Jitted {
  asmx::Assembler Asm;
  asmx::JITMapper JIT;

  void *fn(const char *Name) { return JIT.address(Name); }
};

/// Compiles and maps a module; asserts success.
std::unique_ptr<Jitted> jit(Module &M,
                            const asmx::JITMapper::Resolver &R = nullptr) {
  std::string Err;
  EXPECT_TRUE(verifyModule(M, Err)) << Err;
  auto Out = std::make_unique<Jitted>();
  if (!tpde_tir::compileModuleX64(M, Out->Asm))
    return nullptr;
  if (!Out->JIT.map(Out->Asm, R))
    return nullptr;
  return Out;
}

} // namespace

TEST(TpdeTir, ReturnConstant) {
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {});
  B.setInsertPoint(B.addBlock());
  B.ret(B.constInt(Type::I64, 42));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)()>(J->fn("f"));
  EXPECT_EQ(F(), 42);
}

TEST(TpdeTir, AddArgs) {
  Module M;
  FunctionBuilder B(M, "add", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  B.ret(B.binop(Op::Add, B.arg(0), B.arg(1)));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long, long)>(J->fn("add"));
  EXPECT_EQ(F(2, 40), 42);
  EXPECT_EQ(F(-7, 3), -4);
}

TEST(TpdeTir, ArithMix32) {
  // (a * 3 + b) ^ (b - 5) as i32
  Module M;
  FunctionBuilder B(M, "mix", Type::I32, {Type::I32, Type::I32});
  B.setInsertPoint(B.addBlock());
  ValRef T1 = B.binop(Op::Mul, B.arg(0), B.constInt(Type::I32, 3));
  ValRef T2 = B.binop(Op::Add, T1, B.arg(1));
  ValRef T3 = B.binop(Op::Sub, B.arg(1), B.constInt(Type::I32, 5));
  B.ret(B.binop(Op::Xor, T2, T3));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<int (*)(int, int)>(J->fn("mix"));
  // Reference in unsigned arithmetic: the JIT result wraps mod 2^32, and
  // e.g. INT_MAX * 3 would be UB on the int type (UBSan).
  auto Ref = [](int A, int Bv) {
    return static_cast<int>((static_cast<u32>(A) * 3 + static_cast<u32>(Bv)) ^
                            (static_cast<u32>(Bv) - 5));
  };
  EXPECT_EQ(F(1, 2), Ref(1, 2));
  EXPECT_EQ(F(-100, 77), Ref(-100, 77));
  EXPECT_EQ(F(0x7fffffff, -1), Ref(0x7fffffff, -1));
}

TEST(TpdeTir, BranchAndPhi) {
  // max(a, b) via condbr + phi
  Module M;
  FunctionBuilder B(M, "max", Type::I64, {Type::I64, Type::I64});
  BlockRef E = B.addBlock(), T = B.addBlock(), F = B.addBlock(),
           Jn = B.addBlock();
  B.setInsertPoint(E);
  ValRef C = B.icmp(ICmp::Sgt, B.arg(0), B.arg(1));
  B.condBr(C, T, F);
  B.setInsertPoint(T);
  B.br(Jn);
  B.setInsertPoint(F);
  B.br(Jn);
  B.setInsertPoint(Jn);
  ValRef P = B.phi(Type::I64);
  B.addPhiIncoming(P, T, B.arg(0));
  B.addPhiIncoming(P, F, B.arg(1));
  B.ret(P);
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *Fn = reinterpret_cast<long (*)(long, long)>(J->fn("max"));
  EXPECT_EQ(Fn(3, 9), 9);
  EXPECT_EQ(Fn(9, 3), 9);
  EXPECT_EQ(Fn(-5, -9), -5);
}

TEST(TpdeTir, LoopSum) {
  // sum 0..n-1 with loop phis (exercises fixed registers + back edges)
  Module M;
  FunctionBuilder B(M, "sum", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), L = B.addBlock(), X = B.addBlock();
  B.setInsertPoint(E);
  B.br(L);
  B.setInsertPoint(L);
  ValRef I = B.phi(Type::I64);
  ValRef Acc = B.phi(Type::I64);
  ValRef Acc2 = B.binop(Op::Add, Acc, I);
  ValRef I2 = B.binop(Op::Add, I, B.constInt(Type::I64, 1));
  ValRef C = B.icmp(ICmp::Slt, I2, B.arg(0));
  B.condBr(C, L, X);
  B.setInsertPoint(X);
  B.ret(Acc2);
  B.addPhiIncoming(I, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, L, I2);
  B.addPhiIncoming(Acc, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(Acc, L, Acc2);
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long)>(J->fn("sum"));
  EXPECT_EQ(F(10), 45);
  EXPECT_EQ(F(1), 0);
  EXPECT_EQ(F(100000), 4999950000L);
}

TEST(TpdeTir, MemoryStackVars) {
  Module M;
  FunctionBuilder B(M, "mem", Type::I32, {Type::I32});
  B.setInsertPoint(B.addBlock());
  ValRef S = B.stackVar(16, 8);
  B.store(B.arg(0), S);
  ValRef P2 = B.ptrAdd(S, InvalidRef, 1, 4);
  B.store(B.constInt(Type::I32, 7), P2);
  ValRef V1 = B.load(Type::I32, S);
  ValRef V2 = B.load(Type::I32, P2);
  B.ret(B.binop(Op::Add, V1, V2));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<int (*)(int)>(J->fn("mem"));
  EXPECT_EQ(F(35), 42);
}

TEST(TpdeTir, GlobalsAndPtrArith) {
  Module M;
  std::vector<u8> Init(64, 0);
  for (int I = 0; I < 8; ++I)
    Init[8 * I] = static_cast<u8>(I + 1);
  u32 G = addGlobal(M, "table", 64, 8, /*ReadOnly=*/false, Init);
  FunctionBuilder B(M, "idx", Type::I64, {Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef P = B.ptrAdd(B.globalAddr(G), B.arg(0), 8, 0);
  B.ret(B.load(Type::I64, P));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long)>(J->fn("idx"));
  EXPECT_EQ(F(0), 1);
  EXPECT_EQ(F(5), 6);
}

TEST(TpdeTir, Calls) {
  Module M;
  {
    FunctionBuilder B(M, "helper", Type::I64, {Type::I64, Type::I64});
    B.setInsertPoint(B.addBlock());
    B.ret(B.binop(Op::Mul, B.arg(0), B.arg(1)));
    B.finish();
  }
  {
    FunctionBuilder B(M, "caller", Type::I64, {Type::I64});
    B.setInsertPoint(B.addBlock());
    ValRef R = B.call(0, Type::I64, {B.arg(0), B.constInt(Type::I64, 6)});
    B.ret(B.binop(Op::Add, R, B.constInt(Type::I64, 1)));
    B.finish();
  }
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long)>(J->fn("caller"));
  EXPECT_EQ(F(7), 43);
}

static long extTwice(long X) { return 2 * X; }

TEST(TpdeTir, ExternalCall) {
  Module M;
  u32 Ext = declareFunc(M, "ext_twice", Type::I64, {Type::I64});
  FunctionBuilder B(M, "caller", Type::I64, {Type::I64});
  B.setInsertPoint(B.addBlock());
  B.ret(B.call(Ext, Type::I64, {B.arg(0)}));
  B.finish();
  auto J = jit(M, [](std::string_view N) -> void * {
    return N == "ext_twice" ? reinterpret_cast<void *>(&extTwice) : nullptr;
  });
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long)>(J->fn("caller"));
  EXPECT_EQ(F(21), 42);
}

TEST(TpdeTir, ManyArgsSpillToStack) {
  // 9 integer args: 6 in registers, 3 on the stack.
  Module M;
  std::vector<Type> Params(9, Type::I64);
  {
    FunctionBuilder B(M, "sum9", Type::I64, Params);
    B.setInsertPoint(B.addBlock());
    ValRef Acc = B.arg(0);
    for (u32 I = 1; I < 9; ++I)
      Acc = B.binop(Op::Add, Acc, B.arg(I));
    B.ret(Acc);
    B.finish();
  }
  {
    FunctionBuilder B(M, "caller", Type::I64, {});
    B.setInsertPoint(B.addBlock());
    std::vector<ValRef> Args;
    for (u32 I = 1; I <= 9; ++I)
      Args.push_back(B.constInt(Type::I64, I));
    B.ret(B.call(0, Type::I64, Args));
    B.finish();
  }
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *Direct = reinterpret_cast<long (*)(long, long, long, long, long, long,
                                           long, long, long)>(J->fn("sum9"));
  EXPECT_EQ(Direct(1, 2, 3, 4, 5, 6, 7, 8, 9), 45);
  auto *F = reinterpret_cast<long (*)()>(J->fn("caller"));
  EXPECT_EQ(F(), 45);
}

TEST(TpdeTir, FloatArith) {
  Module M;
  FunctionBuilder B(M, "fp", Type::F64, {Type::F64, Type::F64});
  B.setInsertPoint(B.addBlock());
  ValRef P = B.binop(Op::FMul, B.arg(0), B.arg(1));
  ValRef S = B.binop(Op::FAdd, P, B.constF64(0.5));
  B.ret(B.binop(Op::FDiv, S, B.constF64(2.0)));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<double (*)(double, double)>(J->fn("fp"));
  EXPECT_DOUBLE_EQ(F(3.0, 4.0), 6.25);
}

TEST(TpdeTir, DivisionAndRemainder) {
  Module M;
  FunctionBuilder B(M, "divmod", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef Q = B.binop(Op::SDiv, B.arg(0), B.arg(1));
  ValRef R = B.binop(Op::SRem, B.arg(0), B.arg(1));
  ValRef Q100 = B.binop(Op::Mul, Q, B.constInt(Type::I64, 1000));
  B.ret(B.binop(Op::Add, Q100, R));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long, long)>(J->fn("divmod"));
  EXPECT_EQ(F(42, 5), 8 * 1000 + 2);
  EXPECT_EQ(F(-42, 5), -8 * 1000 - 2);
}

TEST(TpdeTir, Shifts) {
  Module M;
  FunctionBuilder B(M, "sh", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef A = B.binop(Op::Shl, B.arg(0), B.constInt(Type::I64, 3));
  ValRef Bv = B.binop(Op::LShr, B.arg(0), B.arg(1));
  ValRef Cv = B.binop(Op::AShr, B.arg(0), B.constInt(Type::I64, 2));
  ValRef T = B.binop(Op::Xor, A, Bv);
  B.ret(B.binop(Op::Xor, T, Cv));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long, long)>(J->fn("sh"));
  auto Ref = [](long X, long S) {
    return (X << 3) ^ static_cast<long>(static_cast<unsigned long>(X) >> S) ^
           (X >> 2);
  };
  EXPECT_EQ(F(12345, 4), Ref(12345, 4));
  EXPECT_EQ(F(-99999, 17), Ref(-99999, 17));
}

TEST(TpdeTir, SelectAndCompare) {
  Module M;
  FunctionBuilder B(M, "clamp", Type::I64, {Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef Lo = B.constInt(Type::I64, 0);
  ValRef Hi = B.constInt(Type::I64, 100);
  ValRef C1 = B.icmp(ICmp::Slt, B.arg(0), Lo);
  ValRef S1 = B.select(C1, Lo, B.arg(0));
  ValRef C2 = B.icmp(ICmp::Sgt, S1, Hi);
  B.ret(B.select(C2, Hi, S1));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long)>(J->fn("clamp"));
  EXPECT_EQ(F(-5), 0);
  EXPECT_EQ(F(55), 55);
  EXPECT_EQ(F(1000), 100);
}

TEST(TpdeTir, CastChain) {
  Module M;
  FunctionBuilder B(M, "casts", Type::I64, {Type::I32});
  B.setInsertPoint(B.addBlock());
  ValRef T8 = B.cast(Op::Trunc, Type::I8, B.arg(0));
  ValRef S = B.cast(Op::Sext, Type::I64, T8);
  ValRef Z = B.cast(Op::Zext, Type::I64, T8);
  B.ret(B.binop(Op::Add, S, Z));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(int)>(J->fn("casts"));
  auto Ref = [](int X) {
    signed char C = static_cast<signed char>(X);
    return static_cast<long>(C) + static_cast<long>(static_cast<u8>(C));
  };
  EXPECT_EQ(F(5), Ref(5));
  EXPECT_EQ(F(-1), Ref(-1));
  EXPECT_EQ(F(0x1FF), Ref(0x1FF));
}

TEST(TpdeTir, FloatIntConversions) {
  Module M;
  FunctionBuilder B(M, "conv", Type::I64, {Type::F64});
  B.setInsertPoint(B.addBlock());
  ValRef I = B.cast(Op::FpToSi, Type::I64, B.arg(0));
  ValRef D = B.cast(Op::SiToFp, Type::F64, I);
  ValRef Fl = B.cast(Op::FpTrunc, Type::F32, D);
  ValRef D2 = B.cast(Op::FpExt, Type::F64, Fl);
  B.ret(B.cast(Op::FpToSi, Type::I64, D2));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(double)>(J->fn("conv"));
  EXPECT_EQ(F(42.9), 42);
  EXPECT_EQ(F(-3.2), -3);
}

TEST(TpdeTir, I128AddCarry) {
  Module M;
  FunctionBuilder B(M, "carry", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef A = B.cast(Op::Zext, Type::I128, B.arg(0));
  ValRef Bb = B.cast(Op::Zext, Type::I128, B.arg(1));
  ValRef S = B.binop(Op::Add, A, Bb);
  ValRef Hi = B.binop(Op::LShr, S, B.constInt(Type::I128, 64));
  B.ret(B.cast(Op::Trunc, Type::I64, Hi));
  B.finish();
  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(u64, u64)>(J->fn("carry"));
  EXPECT_EQ(F(~0ull, 1), 1);
  EXPECT_EQ(F(5, 9), 0);
}

TEST(TpdeTir, DifferentialSmoke) {
  // A diamond with loops and mixed types, compared against the interpreter
  // over a grid of inputs.
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64, Type::I64});
  BlockRef E = B.addBlock(), L = B.addBlock(), Body = B.addBlock(),
           Odd = B.addBlock(), Even = B.addBlock(), Latch = B.addBlock(),
           X = B.addBlock();
  B.setInsertPoint(E);
  B.br(L);
  B.setInsertPoint(L);
  ValRef I = B.phi(Type::I64);
  ValRef Acc = B.phi(Type::I64);
  ValRef CLoop = B.icmp(ICmp::Slt, I, B.arg(0));
  B.condBr(CLoop, Body, X);
  B.setInsertPoint(Body);
  ValRef Bit = B.binop(Op::And, I, B.constInt(Type::I64, 1));
  ValRef CO = B.icmp(ICmp::Ne, Bit, B.constInt(Type::I64, 0));
  B.condBr(CO, Odd, Even);
  B.setInsertPoint(Odd);
  ValRef AOdd = B.binop(Op::Add, Acc, I);
  B.br(Latch);
  B.setInsertPoint(Even);
  ValRef AEven = B.binop(Op::Xor, Acc, B.arg(1));
  B.br(Latch);
  B.setInsertPoint(Latch);
  ValRef ANext = B.phi(Type::I64);
  ValRef I2 = B.binop(Op::Add, I, B.constInt(Type::I64, 1));
  B.br(L);
  B.setInsertPoint(X);
  B.ret(Acc);
  B.addPhiIncoming(I, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, Latch, I2);
  B.addPhiIncoming(Acc, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(Acc, Latch, ANext);
  B.addPhiIncoming(ANext, Odd, AOdd);
  B.addPhiIncoming(ANext, Even, AEven);
  B.finish();

  auto J = jit(M);
  ASSERT_TRUE(J);
  auto *F = reinterpret_cast<long (*)(long, long)>(J->fn("f"));
  Interp In(M);
  for (long A = 0; A < 8; ++A) {
    for (long Bv : {0L, 1L, 12345L, -7L}) {
      auto R = In.run(0, {{static_cast<u64>(A), 0}, {static_cast<u64>(Bv), 0}});
      ASSERT_TRUE(R.has_value());
      EXPECT_EQ(static_cast<u64>(F(A, Bv)), R->Lo)
          << "inputs " << A << ", " << Bv;
    }
  }
}
