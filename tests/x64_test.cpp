//===- tests/x64_test.cpp - x86-64 encoder tests --------------------------===//
///
/// Two validation strategies: byte-exact golden encodings for representative
/// instructions, and end-to-end execution of small JIT-compiled functions on
/// the x86-64 host.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "x64/Encoder.h"

#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::asmx;
using namespace tpde::x64;

namespace {

std::vector<u8> bytesOf(void (*Emit)(Emitter &)) {
  Assembler A;
  Emitter E(A);
  Emit(E);
  return std::vector<u8>(A.text().Data.begin(), A.text().Data.end());
}

#define EXPECT_BYTES(expr, ...)                                                \
  do {                                                                         \
    std::vector<u8> Got = bytesOf([](Emitter &E) { expr; });                   \
    std::vector<u8> Want = {__VA_ARGS__};                                      \
    EXPECT_EQ(Got, Want);                                                      \
  } while (0)

/// JIT-compiles whatever \p Emit emitted as function "f" and returns its
/// address, keeping the mapper alive via the out-parameter.
void *jitFunction(JITMapper &JIT, void (*Emit)(Emitter &),
                  const JITMapper::Resolver &R = nullptr) {
  // The assembler must outlive the mapper (address() reads its symbol
  // table), hence the static; free the previous test's instance so the
  // suite does not accumulate one leaked assembler per call (LeakSan).
  static Assembler *A = nullptr;
  delete A;
  A = new Assembler();
  Emitter E(*A);
  SymRef F = A->createSymbol("f", Linkage::External, true);
  A->defineSymbol(F, SecKind::Text, 0, 0);
  Emit(E);
  if (!JIT.map(*A, R))
    return nullptr;
  return JIT.address("f");
}

} // namespace

// --- Golden byte encodings (verified against GNU as) ---------------------

TEST(X64Encode, MovRR) {
  EXPECT_BYTES(E.movRR(8, RAX, RBX), 0x48, 0x89, 0xd8);
  EXPECT_BYTES(E.movRR(4, RAX, RBX), 0x89, 0xd8);
  EXPECT_BYTES(E.movRR(8, R8, R15), 0x4d, 0x89, 0xf8);
  EXPECT_BYTES(E.movRR(2, RCX, RDX), 0x66, 0x89, 0xd1);
  EXPECT_BYTES(E.movRR(1, RSI, RDI), 0x40, 0x88, 0xfe); // needs bare REX
}

TEST(X64Encode, MovRI) {
  EXPECT_BYTES(E.movRI(RAX, 42), 0xb8, 0x2a, 0x00, 0x00, 0x00);
  EXPECT_BYTES(E.movRI(R9, 1), 0x41, 0xb9, 0x01, 0x00, 0x00, 0x00);
  // Negative value needs sign-extended 64-bit form.
  EXPECT_BYTES(E.movRI(RAX, static_cast<u64>(-1)), 0x48, 0xc7, 0xc0, 0xff,
               0xff, 0xff, 0xff);
  // Full 64-bit immediate -> movabs.
  EXPECT_BYTES(E.movRI(RAX, 0x123456789abcdef0ull), 0x48, 0xb8, 0xf0, 0xde,
               0xbc, 0x9a, 0x78, 0x56, 0x34, 0x12);
}

TEST(X64Encode, LoadStore) {
  EXPECT_BYTES(E.load(8, RAX, Mem(RDI, 8)), 0x48, 0x8b, 0x47, 0x08);
  EXPECT_BYTES(E.store(4, Mem(RSI, -4), RDX), 0x89, 0x56, 0xfc);
  // RSP base requires SIB.
  EXPECT_BYTES(E.load(8, RAX, Mem(RSP, 16)), 0x48, 0x8b, 0x44, 0x24, 0x10);
  // RBP base with zero displacement still requires disp8.
  EXPECT_BYTES(E.load(8, RAX, Mem(RBP, 0)), 0x48, 0x8b, 0x45, 0x00);
  // R13 behaves like RBP, R12 like RSP.
  EXPECT_BYTES(E.load(8, RAX, Mem(R13, 0)), 0x49, 0x8b, 0x45, 0x00);
  EXPECT_BYTES(E.load(8, RAX, Mem(R12, 0)), 0x49, 0x8b, 0x04, 0x24);
  // Scaled index.
  EXPECT_BYTES(E.load(4, RCX, Mem(RDI, RSI, 4, 0)), 0x8b, 0x0c, 0xb7);
  // Large displacement.
  EXPECT_BYTES(E.load(8, RAX, Mem(RDI, 0x1000)), 0x48, 0x8b, 0x87, 0x00, 0x10,
               0x00, 0x00);
}

TEST(X64Encode, Alu) {
  EXPECT_BYTES(E.aluRR(AluOp::Add, 8, RAX, RBX), 0x48, 0x01, 0xd8);
  EXPECT_BYTES(E.aluRR(AluOp::Sub, 4, RCX, RDX), 0x29, 0xd1);
  EXPECT_BYTES(E.aluRR(AluOp::Cmp, 8, RDI, RSI), 0x48, 0x39, 0xf7);
  EXPECT_BYTES(E.aluRI(AluOp::Add, 8, RSP, 8), 0x48, 0x83, 0xc4, 0x08);
  EXPECT_BYTES(E.aluRI(AluOp::Sub, 8, RSP, 0x100), 0x48, 0x81, 0xec, 0x00,
               0x01, 0x00, 0x00);
  EXPECT_BYTES(E.aluRM(AluOp::Add, 8, RAX, Mem(RDI, 0)), 0x48, 0x03, 0x07);
}

TEST(X64Encode, ShiftsAndUnary) {
  EXPECT_BYTES(E.shiftRI(ShiftOp::Shl, 8, RAX, 4), 0x48, 0xc1, 0xe0, 0x04);
  EXPECT_BYTES(E.shiftRI(ShiftOp::Sar, 4, RDX, 1), 0xd1, 0xfa);
  EXPECT_BYTES(E.shiftRC(ShiftOp::Shr, 8, RBX), 0x48, 0xd3, 0xeb);
  EXPECT_BYTES(E.negR(8, RAX), 0x48, 0xf7, 0xd8);
  EXPECT_BYTES(E.notR(4, RCX), 0xf7, 0xd1);
}

TEST(X64Encode, MulDiv) {
  EXPECT_BYTES(E.imulRR(8, RAX, RBX), 0x48, 0x0f, 0xaf, 0xc3);
  EXPECT_BYTES(E.idivR(8, RCX), 0x48, 0xf7, 0xf9);
  EXPECT_BYTES(E.divR(4, RSI), 0xf7, 0xf6);
  EXPECT_BYTES(E.cwd(8), 0x48, 0x99);
  EXPECT_BYTES(E.cwd(4), 0x99);
}

TEST(X64Encode, SetccCmov) {
  EXPECT_BYTES(E.setcc(Cond::E, RAX), 0x0f, 0x94, 0xc0);
  EXPECT_BYTES(E.setcc(Cond::L, RSI), 0x40, 0x0f, 0x9c, 0xc6);
  EXPECT_BYTES(E.cmovcc(Cond::NE, 8, RAX, RBX), 0x48, 0x0f, 0x45, 0xc3);
}

TEST(X64Encode, Extensions) {
  EXPECT_BYTES(E.movzxRR(1, RAX, RCX), 0x0f, 0xb6, 0xc1);
  EXPECT_BYTES(E.movzxRR(4, RAX, RCX), 0x89, 0xc8);
  EXPECT_BYTES(E.movsxRR(4, RAX, RCX), 0x48, 0x63, 0xc1);
  EXPECT_BYTES(E.movsxRR(1, RDX, RBX), 0x48, 0x0f, 0xbe, 0xd3);
}

TEST(X64Encode, PushPopRet) {
  EXPECT_BYTES(E.push(RBP), 0x55);
  EXPECT_BYTES(E.push(R12), 0x41, 0x54);
  EXPECT_BYTES(E.pop(RBP), 0x5d);
  EXPECT_BYTES(E.ret(), 0xc3);
}

TEST(X64Encode, Lea) {
  EXPECT_BYTES(E.lea(RAX, Mem(RDI, RSI, 1, 0)), 0x48, 0x8d, 0x04, 0x37);
  EXPECT_BYTES(E.lea(RCX, Mem(RBP, -8)), 0x48, 0x8d, 0x4d, 0xf8);
}

TEST(X64Encode, SSE) {
  EXPECT_BYTES(E.fpArith(FpOp::Add, 8, XMM0, XMM1), 0xf2, 0x0f, 0x58, 0xc1);
  EXPECT_BYTES(E.fpArith(FpOp::Mul, 4, XMM2, XMM3), 0xf3, 0x0f, 0x59, 0xd3);
  EXPECT_BYTES(E.fpLoad(8, XMM0, Mem(RDI, 0)), 0xf2, 0x0f, 0x10, 0x07);
  EXPECT_BYTES(E.fpStore(4, Mem(RSI, 4), XMM1), 0xf3, 0x0f, 0x11, 0x4e, 0x04);
  EXPECT_BYTES(E.ucomis(8, XMM0, XMM1), 0x66, 0x0f, 0x2e, 0xc1);
  EXPECT_BYTES(E.xorps(XMM0, XMM0), 0x0f, 0x57, 0xc0);
  EXPECT_BYTES(E.cvtsi2fp(8, 8, XMM0, RAX), 0xf2, 0x48, 0x0f, 0x2a, 0xc0);
  EXPECT_BYTES(E.cvtfp2si(8, 4, RAX, XMM0), 0xf2, 0x0f, 0x2c, 0xc0);
  EXPECT_BYTES(E.movdToFp(8, XMM0, RAX), 0x66, 0x48, 0x0f, 0x6e, 0xc0);
  EXPECT_BYTES(E.movdFromFp(8, RAX, XMM0), 0x66, 0x48, 0x0f, 0x7e, 0xc0);
}

TEST(X64Encode, Nops) {
  for (unsigned N = 1; N <= 32; ++N) {
    Assembler A;
    Emitter E(A);
    E.nops(N);
    EXPECT_EQ(A.text().size(), N) << "nop length " << N;
  }
}

// --- Execution tests -------------------------------------------------------

TEST(X64Exec, Return42) {
  JITMapper JIT;
  auto *F = reinterpret_cast<int (*)()>(jitFunction(JIT, [](Emitter &E) {
    E.movRI(RAX, 42);
    E.ret();
  }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(), 42);
}

TEST(X64Exec, AddArgs) {
  JITMapper JIT;
  auto *F =
      reinterpret_cast<long (*)(long, long)>(jitFunction(JIT, [](Emitter &E) {
        E.lea(RAX, Mem(RDI, RSI, 1, 0));
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(2, 40), 42);
  EXPECT_EQ(F(-5, 3), -2);
}

TEST(X64Exec, BranchMax) {
  JITMapper JIT;
  // max(a, b) with a conditional branch.
  auto *F =
      reinterpret_cast<long (*)(long, long)>(jitFunction(JIT, [](Emitter &E) {
        Assembler &A = E.assembler();
        Label L = A.makeLabel();
        E.movRR(8, RAX, RDI);
        E.aluRR(AluOp::Cmp, 8, RDI, RSI);
        E.jccLabel(Cond::GE, L);
        E.movRR(8, RAX, RSI);
        A.bindLabel(L);
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(3, 9), 9);
  EXPECT_EQ(F(9, 3), 9);
  EXPECT_EQ(F(-1, -2), -1);
}

TEST(X64Exec, LoopSum) {
  JITMapper JIT;
  // sum of 0..n-1
  auto *F = reinterpret_cast<long (*)(long)>(jitFunction(JIT, [](Emitter &E) {
    Assembler &A = E.assembler();
    Label Head = A.makeLabel(), End = A.makeLabel();
    E.movRI(RAX, 0);
    E.movRI(RCX, 0);
    A.bindLabel(Head);
    E.aluRR(AluOp::Cmp, 8, RCX, RDI);
    E.jccLabel(Cond::GE, End);
    E.aluRR(AluOp::Add, 8, RAX, RCX);
    E.aluRI(AluOp::Add, 8, RCX, 1);
    E.jmpLabel(Head);
    A.bindLabel(End);
    E.ret();
  }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(10), 45);
  EXPECT_EQ(F(0), 0);
  EXPECT_EQ(F(1000), 499500);
}

static long externalHelper(long X) { return X * 3; }

TEST(X64Exec, CallExternalSymbol) {
  JITMapper JIT;
  auto *F = reinterpret_cast<long (*)(long)>(jitFunction(
      JIT,
      [](Emitter &E) {
        Assembler &A = E.assembler();
        SymRef H = A.getOrCreateSymbol("helper");
        E.push(RBP); // keep stack 16-byte aligned for the call
        E.callSym(H);
        E.pop(RBP);
        E.aluRI(AluOp::Add, 8, RAX, 1);
        E.ret();
      },
      [](std::string_view Name) -> void * {
        return Name == "helper" ? reinterpret_cast<void *>(&externalHelper)
                                : nullptr;
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(10), 31);
}

TEST(X64Exec, FloatAdd) {
  JITMapper JIT;
  auto *F = reinterpret_cast<double (*)(double, double)>(
      jitFunction(JIT, [](Emitter &E) {
        E.fpArith(FpOp::Add, 8, XMM0, XMM1);
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_DOUBLE_EQ(F(1.5, 2.25), 3.75);
}

TEST(X64Exec, RodataConstant) {
  JITMapper JIT;
  auto *F =
      reinterpret_cast<double (*)()>(jitFunction(JIT, [](Emitter &E) {
        Assembler &A = E.assembler();
        Section &RO = A.section(SecKind::ROData);
        SymRef C = A.createSymbol("const_pi", Linkage::Internal, false);
        u64 Off = RO.size();
        double Pi = 3.14159;
        RO.append(&Pi, 8);
        A.defineSymbol(C, SecKind::ROData, Off, 8);
        E.fpLoadSym(8, XMM0, C);
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_DOUBLE_EQ(F(), 3.14159);
}

TEST(X64Exec, MemoryLoadStore) {
  JITMapper JIT;
  // *(long*)(p + 8) = *(long*)p + 1; returns old value
  auto *F =
      reinterpret_cast<long (*)(long *)>(jitFunction(JIT, [](Emitter &E) {
        E.load(8, RAX, Mem(RDI, 0));
        E.lea(RCX, Mem(RAX, 1));
        E.store(8, Mem(RDI, 8), RCX);
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  long Buf[2] = {41, 0};
  EXPECT_EQ(F(Buf), 41);
  EXPECT_EQ(Buf[1], 42);
}

TEST(X64Exec, DivisionSequence) {
  JITMapper JIT;
  // signed division rdi / rsi
  auto *F =
      reinterpret_cast<long (*)(long, long)>(jitFunction(JIT, [](Emitter &E) {
        E.movRR(8, RAX, RDI);
        E.cwd(8);
        E.idivR(8, RSI);
        E.ret();
      }));
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F(42, 7), 6);
  EXPECT_EQ(F(-42, 7), -6);
  EXPECT_EQ(F(7, -2), -3);
}

TEST(X64Exec, Conversions) {
  JITMapper JIT;
  auto *F = reinterpret_cast<double (*)(long)>(jitFunction(JIT, [](Emitter &E) {
    E.cvtsi2fp(8, 8, XMM0, RDI);
    E.ret();
  }));
  ASSERT_NE(F, nullptr);
  EXPECT_DOUBLE_EQ(F(7), 7.0);
  EXPECT_DOUBLE_EQ(F(-3), -3.0);
}
