//===- tests/parallel_test.cpp - Parallel module compilation tests --------===//
///
/// Concurrency test suite for the sharded module compiler: the merged
/// output must be byte-identical for every thread count and across
/// repeated runs (the determinism contract of
/// tpde_tir/ParallelCompiler.h), cross-shard calls must relocate
/// correctly end-to-end (JIT execution), and steady-state recompilation
/// must not touch the heap (docs/PERF.md). Also covers the work-stealing
/// range queue and the Assembler merge API underneath it.
///
/// The TSan CI job runs this binary to shake out data races in the
/// worker pool and the queue.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "support/AllocCounter.h"
#include "support/WorkQueue.h"
#include "tpde_tir/ParallelCompiler.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;

// --- Work-stealing range queue ---------------------------------------------

TEST(WorkQueue, SingleWorkerPopsInOrder) {
  support::WorkStealingRangeQueue Q;
  Q.reset(10, 1);
  u32 Out;
  for (u32 I = 0; I < 10; ++I) {
    ASSERT_TRUE(Q.pop(0, Out));
    EXPECT_EQ(Out, I);
  }
  EXPECT_FALSE(Q.pop(0, Out));
}

TEST(WorkQueue, ExhaustedWorkerStealsFromVictims) {
  support::WorkStealingRangeQueue Q;
  Q.reset(8, 2); // worker 0 owns [0,4), worker 1 owns [4,8)
  u32 Out;
  std::vector<bool> Seen(8, false);
  // Worker 0 drains everything: its own range first, then steals.
  for (u32 I = 0; I < 8; ++I) {
    ASSERT_TRUE(Q.pop(0, Out));
    ASSERT_LT(Out, 8u);
    EXPECT_FALSE(Seen[Out]) << "index " << Out << " claimed twice";
    Seen[Out] = true;
  }
  EXPECT_FALSE(Q.pop(0, Out));
  EXPECT_FALSE(Q.pop(1, Out));
}

TEST(WorkQueue, ConcurrentClaimsAreExactlyOnce) {
  constexpr u32 Count = 10000;
  constexpr unsigned NumThreads = 8;
  support::WorkStealingRangeQueue Q;
  Q.reset(Count, NumThreads);
  std::vector<std::atomic<u32>> Claims(Count);
  std::atomic<u64> Sum{0};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < NumThreads; ++W)
    Threads.emplace_back([&, W] {
      u32 Out;
      u64 Local = 0;
      while (Q.pop(W, Out)) {
        Claims[Out].fetch_add(1, std::memory_order_relaxed);
        Local += Out;
      }
      Sum.fetch_add(Local, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  for (u32 I = 0; I < Count; ++I)
    ASSERT_EQ(Claims[I].load(), 1u) << "index " << I;
  EXPECT_EQ(Sum.load(), static_cast<u64>(Count) * (Count - 1) / 2);
}

TEST(WorkQueue, ResetReusesSlotStorage) {
  support::WorkStealingRangeQueue Q;
  Q.reset(100, 4);
  u32 Out;
  while (Q.pop(0, Out))
    ;
  support::AllocWatch W;
  Q.reset(100, 4);
  EXPECT_EQ(W.newCalls(), 0u) << "re-reset with same worker count allocated";
}

// --- Determinism of the merged module --------------------------------------

namespace {

/// Everything observable about an assembled module, for equality checks.
struct ModuleImage {
  std::vector<u8> Text, RO, Data;
  u64 BssSize = 0;
  std::vector<std::tuple<std::string, int, bool, bool, int, u64, u64>> Syms;
  std::vector<std::tuple<int, u64, int, u32, i64>> Relocs;

  bool operator==(const ModuleImage &) const = default;
};

ModuleImage imageOf(const asmx::Assembler &Asm) {
  ModuleImage Img;
  const asmx::Section &T = Asm.section(asmx::SecKind::Text);
  const asmx::Section &RO = Asm.section(asmx::SecKind::ROData);
  const asmx::Section &D = Asm.section(asmx::SecKind::Data);
  Img.Text.assign(T.Data.begin(), T.Data.end());
  Img.RO.assign(RO.Data.begin(), RO.Data.end());
  Img.Data.assign(D.Data.begin(), D.Data.end());
  Img.BssSize = Asm.section(asmx::SecKind::BSS).BssSize;
  for (const asmx::Symbol &S : Asm.symbols())
    Img.Syms.emplace_back(std::string(S.Name), static_cast<int>(S.Link),
                          S.Defined, S.IsFunc, static_cast<int>(S.Sec), S.Off,
                          S.Size);
  for (const asmx::Reloc &R : Asm.relocs())
    Img.Relocs.emplace_back(static_cast<int>(R.Sec), R.Off,
                            static_cast<int>(R.Kind), R.Sym.Idx, R.Addend);
  return Img;
}

tir::Module makeModule(u64 Seed, u32 NumFuncs, bool SSAForm) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = SSAForm;
  P.CallPct = 12; // cross-shard calls are the point of this suite
  workloads::genModule(M, P);
  return M;
}

} // namespace

/// The tentpole property: one module, compiled with 1, 2, 4, and 8
/// threads, must produce a byte-identical merged image — sections,
/// symbol table, and relocations. The .text bytes must additionally
/// match a serial single-assembler compile.
TEST(ParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  for (bool SSA : {true, false}) {
    tir::Module M = makeModule(11, 26, SSA);

    asmx::Assembler SerialAsm;
    ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
    std::vector<u8> SerialText(SerialAsm.text().Data.begin(),
                               SerialAsm.text().Data.end());

    ModuleImage Ref;
    bool HaveRef = false;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      asmx::Assembler Out;
      ASSERT_TRUE(tpde_tir::compileModuleX64Parallel(M, Out, Threads))
          << "threads=" << Threads;
      ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
      ModuleImage Img = imageOf(Out);
      EXPECT_EQ(Img.Text, SerialText)
          << "merged .text diverged from the serial compile, threads="
          << Threads;
      if (!HaveRef) {
        Ref = std::move(Img);
        HaveRef = true;
      } else {
        EXPECT_EQ(Img, Ref) << "merged image differs at threads=" << Threads
                            << " (SSA=" << SSA << ")";
      }
    }
  }
}

/// Repeated compiles through one reused pipeline must also be identical —
/// the work-stealing schedule varies run to run, the output must not.
TEST(ParallelDeterminism, RepeatedRunsAreIdentical) {
  tir::Module M = makeModule(23, 19, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 4;
  tpde_tir::ParallelModuleCompiler PC(M, Opts);

  asmx::Assembler Out;
  ASSERT_TRUE(PC.compile(Out));
  ModuleImage Ref = imageOf(Out);
  for (int Run = 0; Run < 5; ++Run) {
    ASSERT_TRUE(PC.compile(Out));
    ASSERT_EQ(imageOf(Out), Ref) << "run " << Run;
  }
}

/// End-to-end: the merged module must JIT-map and execute with the same
/// results as the serial compile — this exercises cross-shard call
/// relocations and global-address references resolved through the merge.
TEST(ParallelCorrectness, JITExecutionMatchesSerial) {
  tir::Module M = makeModule(37, 12, true);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  asmx::JITMapper SerialJIT;
  ASSERT_TRUE(SerialJIT.map(SerialAsm));
  auto *SerialFn =
      reinterpret_cast<u64 (*)(u64, u64)>(SerialJIT.address("main_entry"));
  ASSERT_NE(SerialFn, nullptr);

  asmx::Assembler ParAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64Parallel(M, ParAsm, 4));
  asmx::JITMapper ParJIT;
  ASSERT_TRUE(ParJIT.map(ParAsm));
  auto *ParFn =
      reinterpret_cast<u64 (*)(u64, u64)>(ParJIT.address("main_entry"));
  ASSERT_NE(ParFn, nullptr);

  // Identical input sequences against fresh mappings: both start from the
  // same initial global state, so all results must agree bit for bit.
  for (u64 I = 0; I < 6; ++I)
    ASSERT_EQ(ParFn(I, I * 7 + 3), SerialFn(I, I * 7 + 3)) << "input " << I;
}

/// Steady-state recompilation through a reused pipeline must not touch
/// the heap. Run single-threaded so the one worker visits every shard
/// during warmup and reaches its high-water mark — with work stealing,
/// which worker sees which shard varies by schedule, so a multi-threaded
/// worker may legitimately first meet a larger shard later. The
/// multi-thread variant below bounds the whole pipeline instead.
TEST(ParallelReuse, SteadyStateIsAllocationFreeSingleWorker) {
  tir::Module M = makeModule(5, 16, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1;
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state parallel recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
}

/// With several workers the schedule decides which worker grows which
/// buffer, so individual compiles may allocate while a worker warms up on
/// a shard it has not seen; but once every worker has compiled every
/// shard size, the pipeline must converge to zero as well. Compiling
/// many rounds makes convergence overwhelmingly likely; the test asserts
/// the *last* round is allocation-free.
TEST(ParallelReuse, SteadyStateConvergesMultiWorker) {
  tir::Module M = makeModule(5, 16, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 2;
  Opts.FuncsPerShard = 8; // two shards: both workers see both sizes fast
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  u64 Last = ~0ull;
  for (int I = 0; I < 20 && Last != 0; ++I) {
    support::AllocWatch W;
    ASSERT_TRUE(PC.compile(Out));
    Last = W.newCalls();
  }
  EXPECT_EQ(Last, 0u) << "multi-worker pipeline never reached steady state";
}

/// A module whose shard boundaries split mutually-calling functions needs
/// the cross-shard symbol resolution of Assembler::mergeFrom(); make sure
/// an undefined-but-called function surfaces as a JIT mapping failure
/// rather than silently mis-linking.
TEST(ParallelCorrectness, FailedShardFailsTheCompile) {
  tir::Module M = makeModule(3, 4, true);
  // Sabotage: an unsupported instruction (dynamic i128 shift) in one
  // function makes its shard fail; the whole compile must report failure.
  tir::Function &F = M.Funcs[1];
  for (tir::Value &V : F.Values) {
    if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Add) {
      V.Opcode = tir::Op::None; // no instruction compiler for None
      break;
    }
  }
  asmx::Assembler Out;
  EXPECT_FALSE(tpde_tir::compileModuleX64Parallel(M, Out, 2));
}
