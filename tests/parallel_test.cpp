//===- tests/parallel_test.cpp - Parallel module compilation tests --------===//
///
/// Concurrency test suite for the sharded module compiler: the merged
/// output must be byte-identical for every thread count and across
/// repeated runs (the determinism contract of
/// tpde_tir/ParallelCompiler.h), cross-shard calls must relocate
/// correctly end-to-end (JIT execution), and steady-state recompilation
/// must not touch the heap (docs/PERF.md). Also covers the work-stealing
/// range queue and the Assembler merge API underneath it.
///
/// The TSan CI job runs this binary to shake out data races in the
/// worker pool and the queue.
///
//===----------------------------------------------------------------------===//

#include "a64/Sim.h"
#include "asmx/ElfWriter.h"
#include "asmx/JITMapper.h"
#include "support/AllocCounter.h"
#include "support/WorkQueue.h"
#include "tpde_tir/ParallelCompiler.h"
#include "uir/ParallelCompiler.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;

// --- Work-stealing range queue ---------------------------------------------

TEST(WorkQueue, SingleWorkerPopsInOrder) {
  support::WorkStealingRangeQueue Q;
  Q.reset(10, 1);
  u32 Out;
  for (u32 I = 0; I < 10; ++I) {
    ASSERT_TRUE(Q.pop(0, Out));
    EXPECT_EQ(Out, I);
  }
  EXPECT_FALSE(Q.pop(0, Out));
}

TEST(WorkQueue, ExhaustedWorkerStealsFromVictims) {
  support::WorkStealingRangeQueue Q;
  Q.reset(8, 2); // worker 0 owns [0,4), worker 1 owns [4,8)
  u32 Out;
  std::vector<bool> Seen(8, false);
  // Worker 0 drains everything: its own range first, then steals.
  for (u32 I = 0; I < 8; ++I) {
    ASSERT_TRUE(Q.pop(0, Out));
    ASSERT_LT(Out, 8u);
    EXPECT_FALSE(Seen[Out]) << "index " << Out << " claimed twice";
    Seen[Out] = true;
  }
  EXPECT_FALSE(Q.pop(0, Out));
  EXPECT_FALSE(Q.pop(1, Out));
}

TEST(WorkQueue, ConcurrentClaimsAreExactlyOnce) {
  constexpr u32 Count = 10000;
  constexpr unsigned NumThreads = 8;
  support::WorkStealingRangeQueue Q;
  Q.reset(Count, NumThreads);
  std::vector<std::atomic<u32>> Claims(Count);
  std::atomic<u64> Sum{0};
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < NumThreads; ++W)
    Threads.emplace_back([&, W] {
      u32 Out;
      u64 Local = 0;
      while (Q.pop(W, Out)) {
        Claims[Out].fetch_add(1, std::memory_order_relaxed);
        Local += Out;
      }
      Sum.fetch_add(Local, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  for (u32 I = 0; I < Count; ++I)
    ASSERT_EQ(Claims[I].load(), 1u) << "index " << I;
  EXPECT_EQ(Sum.load(), static_cast<u64>(Count) * (Count - 1) / 2);
}

TEST(WorkQueue, ResetReusesSlotStorage) {
  support::WorkStealingRangeQueue Q;
  Q.reset(100, 4);
  u32 Out;
  while (Q.pop(0, Out))
    ;
  support::AllocWatch W;
  Q.reset(100, 4);
  EXPECT_EQ(W.newCalls(), 0u) << "re-reset with same worker count allocated";
}

// --- Determinism of the merged module --------------------------------------

namespace {

/// Everything observable about an assembled module, for equality checks.
struct ModuleImage {
  std::vector<u8> Text, RO, Data;
  u64 BssSize = 0;
  std::vector<std::tuple<std::string, int, bool, bool, int, u64, u64>> Syms;
  std::vector<std::tuple<int, u64, int, u32, i64>> Relocs;

  bool operator==(const ModuleImage &) const = default;
};

ModuleImage imageOf(const asmx::Assembler &Asm) {
  ModuleImage Img;
  const asmx::Section &T = Asm.section(asmx::SecKind::Text);
  const asmx::Section &RO = Asm.section(asmx::SecKind::ROData);
  const asmx::Section &D = Asm.section(asmx::SecKind::Data);
  Img.Text.assign(T.Data.begin(), T.Data.end());
  Img.RO.assign(RO.Data.begin(), RO.Data.end());
  Img.Data.assign(D.Data.begin(), D.Data.end());
  Img.BssSize = Asm.section(asmx::SecKind::BSS).BssSize;
  for (const asmx::Symbol &S : Asm.symbols())
    Img.Syms.emplace_back(std::string(S.Name), static_cast<int>(S.Link),
                          S.Defined, S.IsFunc, static_cast<int>(S.Sec), S.Off,
                          S.Size);
  for (const asmx::Reloc &R : Asm.relocs())
    Img.Relocs.emplace_back(static_cast<int>(R.Sec), R.Off,
                            static_cast<int>(R.Kind), R.Sym.Idx, R.Addend);
  return Img;
}

tir::Module makeModule(u64 Seed, u32 NumFuncs, bool SSAForm) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = SSAForm;
  P.CallPct = 12; // cross-shard calls are the point of this suite
  workloads::genModule(M, P);
  return M;
}

/// Smaller dynamic footprint for tests that *execute* on the a64
/// simulator (~100x slower than native): shallow loops, fewer blocks.
tir::Module makeSimModule(u64 Seed, u32 NumFuncs, bool WithFloat) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = true;
  P.CallPct = 12;
  P.RegionBudget = 4;
  P.MaxLoopTrip = 3;
  // fptosi overflow semantics legitimately differ between the targets
  // (x86 "integer indefinite" vs AArch64 saturation; UB at the IR
  // level), so cross-back-end comparisons run without FP.
  if (!WithFloat)
    P.FloatPct = 0;
  workloads::genModule(M, P);
  return M;
}

} // namespace

/// The tentpole property: one module, compiled with 1, 2, 4, and 8
/// threads, must produce a byte-identical merged image — sections,
/// symbol table, and relocations. The .text and .rodata bytes must
/// additionally match a serial single-assembler compile (rodata thanks
/// to the merge-time FP-pool dedup).
TEST(ParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  for (bool SSA : {true, false}) {
    tir::Module M = makeModule(11, 26, SSA);

    asmx::Assembler SerialAsm;
    ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
    std::vector<u8> SerialText(SerialAsm.text().Data.begin(),
                               SerialAsm.text().Data.end());
    const asmx::Section &SerialROSec =
        SerialAsm.section(asmx::SecKind::ROData);
    std::vector<u8> SerialRO(SerialROSec.Data.begin(), SerialROSec.Data.end());

    ModuleImage Ref;
    bool HaveRef = false;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      asmx::Assembler Out;
      ASSERT_TRUE(tpde_tir::compileModuleX64Parallel(M, Out, Threads))
          << "threads=" << Threads;
      ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
      ModuleImage Img = imageOf(Out);
      EXPECT_EQ(Img.Text, SerialText)
          << "merged .text diverged from the serial compile, threads="
          << Threads;
      EXPECT_EQ(Img.RO, SerialRO)
          << "merged .rodata (FP pool) diverged from the serial compile, "
             "threads=" << Threads;
      if (!HaveRef) {
        Ref = std::move(Img);
        HaveRef = true;
      } else {
        EXPECT_EQ(Img, Ref) << "merged image differs at threads=" << Threads
                            << " (SSA=" << SSA << ")";
      }
    }
  }
}

/// The FP-pool dedup must actually fire: with FP constants shared across
/// functions in different shards, the merged pool equals the serial one
/// (which dedups per module) — not the concatenation of per-shard pools.
TEST(ParallelDeterminism, FpPoolMatchesSerialAcrossShards) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 71;
  P.NumFuncs = 20;
  P.FloatPct = 45; // plenty of FP constants in every shard
  P.SSAForm = true;
  workloads::genModule(M, P);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  const asmx::Section &SerialRO = SerialAsm.section(asmx::SecKind::ROData);
  ASSERT_GT(SerialRO.size(), 0u) << "profile generated no FP constants";

  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 4;
  Opts.FuncsPerShard = 2; // many shards -> many would-be duplicates
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  ASSERT_TRUE(PC.compile(Out));
  ASSERT_GT(PC.shardCount(), 4u);
  const asmx::Section &MergedRO = Out.section(asmx::SecKind::ROData);
  EXPECT_EQ(MergedRO.size(), SerialRO.size())
      << "cross-shard FP-pool dedup did not restore the serial pool size";
  EXPECT_TRUE(std::equal(MergedRO.Data.begin(), MergedRO.Data.end(),
                         SerialRO.Data.begin(), SerialRO.Data.end()));
}

/// Repeated compiles through one reused pipeline must also be identical —
/// the work-stealing schedule varies run to run, the output must not.
TEST(ParallelDeterminism, RepeatedRunsAreIdentical) {
  tir::Module M = makeModule(23, 19, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 4;
  tpde_tir::ParallelModuleCompiler PC(M, Opts);

  asmx::Assembler Out;
  ASSERT_TRUE(PC.compile(Out));
  ModuleImage Ref = imageOf(Out);
  for (int Run = 0; Run < 5; ++Run) {
    ASSERT_TRUE(PC.compile(Out));
    ASSERT_EQ(imageOf(Out), Ref) << "run " << Run;
  }
}

/// End-to-end: the merged module must JIT-map and execute with the same
/// results as the serial compile — this exercises cross-shard call
/// relocations and global-address references resolved through the merge.
TEST(ParallelCorrectness, JITExecutionMatchesSerial) {
  tir::Module M = makeModule(37, 12, true);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  asmx::JITMapper SerialJIT;
  ASSERT_TRUE(SerialJIT.map(SerialAsm));
  auto *SerialFn =
      reinterpret_cast<u64 (*)(u64, u64)>(SerialJIT.address("main_entry"));
  ASSERT_NE(SerialFn, nullptr);

  asmx::Assembler ParAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64Parallel(M, ParAsm, 4));
  asmx::JITMapper ParJIT;
  ASSERT_TRUE(ParJIT.map(ParAsm));
  auto *ParFn =
      reinterpret_cast<u64 (*)(u64, u64)>(ParJIT.address("main_entry"));
  ASSERT_NE(ParFn, nullptr);

  // Identical input sequences against fresh mappings: both start from the
  // same initial global state, so all results must agree bit for bit.
  for (u64 I = 0; I < 6; ++I)
    ASSERT_EQ(ParFn(I, I * 7 + 3), SerialFn(I, I * 7 + 3)) << "input " << I;
}

/// Steady-state recompilation through a reused pipeline must not touch
/// the heap. Run single-threaded so the one worker visits every shard
/// during warmup and reaches its high-water mark — with work stealing,
/// which worker sees which shard varies by schedule, so a multi-threaded
/// worker may legitimately first meet a larger shard later. The
/// multi-thread variant below bounds the whole pipeline instead.
TEST(ParallelReuse, SteadyStateIsAllocationFreeSingleWorker) {
  tir::Module M = makeModule(5, 16, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1;
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state parallel recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
}

/// With several workers the schedule decides which worker grows which
/// buffer, so individual compiles may allocate while a worker warms up on
/// a shard it has not seen; but once every worker has compiled every
/// shard size, the pipeline must converge to zero as well. Compiling
/// many rounds makes convergence overwhelmingly likely; the test asserts
/// the *last* round is allocation-free.
TEST(ParallelReuse, SteadyStateConvergesMultiWorker) {
  tir::Module M = makeModule(5, 16, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 2;
  Opts.FuncsPerShard = 8; // two shards: both workers see both sizes fast
  tpde_tir::ParallelModuleCompiler PC(M, Opts);
  asmx::Assembler Out;
  u64 Last = ~0ull;
  for (int I = 0; I < 20 && Last != 0; ++I) {
    support::AllocWatch W;
    ASSERT_TRUE(PC.compile(Out));
    Last = W.newCalls();
  }
  EXPECT_EQ(Last, 0u) << "multi-worker pipeline never reached steady state";
}

// --- Deterministic size-weighted shard sizing ------------------------------

/// Weighted shard boundaries are a pure function of the module: same
/// bounds for every thread count, every shard non-empty, full coverage —
/// and the merged .text must still equal the serial compile (the merge
/// walks shards in function order regardless of where the cuts fall).
TEST(WeightedShards, DeterministicBoundsAndSerialText) {
  tir::Module M = makeModule(41, 21, true);
  // Skew the module: make one function much larger than the rest so the
  // weighted cut visibly deviates from the fixed-FuncsPerShard grid.
  {
    workloads::Profile Big;
    Big.Seed = 99;
    Big.NumFuncs = 1;
    Big.RegionBudget = 60;
    Big.InstsPerBlock = 16;
    workloads::genFunction(M, "whale", Big);
  }

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  std::vector<u8> SerialText(SerialAsm.text().Data.begin(),
                             SerialAsm.text().Data.end());

  std::vector<u32> RefBounds;
  for (unsigned Threads : {1u, 3u, 8u}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = Threads;
    ASSERT_TRUE(Opts.SizeWeightedShards) << "weighted sharding is the default";
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    ASSERT_TRUE(PC.compile(Out));
    std::span<const u32> Bounds = PC.shardBounds();
    ASSERT_EQ(Bounds.size(), PC.shardCount() + 1u);
    EXPECT_EQ(Bounds.front(), 0u);
    EXPECT_EQ(Bounds.back(), static_cast<u32>(M.Funcs.size()));
    for (size_t I = 1; I < Bounds.size(); ++I)
      EXPECT_LT(Bounds[I - 1], Bounds[I]) << "empty shard " << I;
    if (RefBounds.empty())
      RefBounds.assign(Bounds.begin(), Bounds.end());
    else
      EXPECT_TRUE(std::equal(Bounds.begin(), Bounds.end(), RefBounds.begin(),
                             RefBounds.end()))
          << "shard bounds depend on thread count (threads=" << Threads << ")";
    std::vector<u8> Text(Out.text().Data.begin(), Out.text().Data.end());
    EXPECT_EQ(Text, SerialText) << "weighted shards broke the serial-text "
                                   "contract, threads=" << Threads;
  }

  // The unweighted decomposition must produce the same serial text too.
  tpde_tir::ParallelCompileOptions Fixed;
  Fixed.NumThreads = 2;
  Fixed.SizeWeightedShards = false;
  tpde_tir::ParallelModuleCompiler PC(M, Fixed);
  asmx::Assembler Out;
  ASSERT_TRUE(PC.compile(Out));
  std::vector<u8> Text(Out.text().Data.begin(), Out.text().Data.end());
  EXPECT_EQ(Text, SerialText);
}

// --- AArch64: the driver's second instantiation ----------------------------

/// The tentpole parity property: the a64 back-end through the shared
/// driver template is byte-identical for every thread count, and its
/// merged .text equals the serial a64 compile.
TEST(A64ParallelDeterminism, ByteIdenticalAcrossThreadCounts) {
  for (bool SSA : {true, false}) {
    tir::Module M = makeModule(11, 26, SSA);

    asmx::Assembler SerialAsm;
    ASSERT_TRUE(tpde_tir::compileModuleA64(M, SerialAsm));
    std::vector<u8> SerialText(SerialAsm.text().Data.begin(),
                               SerialAsm.text().Data.end());
    const asmx::Section &SerialROSec =
        SerialAsm.section(asmx::SecKind::ROData);
    std::vector<u8> SerialRO(SerialROSec.Data.begin(), SerialROSec.Data.end());

    ModuleImage Ref;
    bool HaveRef = false;
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      asmx::Assembler Out;
      ASSERT_TRUE(tpde_tir::compileModuleA64Parallel(M, Out, Threads))
          << "threads=" << Threads;
      ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
      ModuleImage Img = imageOf(Out);
      EXPECT_EQ(Img.Text, SerialText)
          << "merged a64 .text diverged from the serial compile, threads="
          << Threads;
      EXPECT_EQ(Img.RO, SerialRO)
          << "merged a64 .rodata diverged from the serial compile, threads="
          << Threads;
      if (!HaveRef) {
        Ref = std::move(Img);
        HaveRef = true;
      } else {
        EXPECT_EQ(Img, Ref) << "merged a64 image differs at threads="
                            << Threads << " (SSA=" << SSA << ")";
      }
    }
  }
}

/// End-to-end on the simulator: the merged a64 module must map and
/// execute with the same results as the serial a64 compile — cross-shard
/// call relocations and global references resolve through the merge.
TEST(A64ParallelCorrectness, SimExecutionMatchesSerial) {
  tir::Module M = makeSimModule(37, 12, /*WithFloat=*/true);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleA64(M, SerialAsm));
  a64::Sim SerialSim;
  a64::SimModule SerialMod;
  ASSERT_TRUE(SerialMod.map(SerialAsm, SerialSim));
  u64 SerialEntry = SerialMod.address("main_entry");
  ASSERT_NE(SerialEntry, 0u);

  asmx::Assembler ParAsm;
  ASSERT_TRUE(tpde_tir::compileModuleA64Parallel(M, ParAsm, 4));
  a64::Sim ParSim;
  a64::SimModule ParMod;
  ASSERT_TRUE(ParMod.map(ParAsm, ParSim));
  u64 ParEntry = ParMod.address("main_entry");
  ASSERT_NE(ParEntry, 0u);

  // Identical input sequences against fresh mappings: both start from the
  // same initial global state, so all results must agree bit for bit.
  for (u64 I = 0; I < 6; ++I) {
    u64 Serial = SerialSim.call(SerialEntry, {I, I * 7 + 3});
    u64 Par = ParSim.call(ParEntry, {I, I * 7 + 3});
    ASSERT_FALSE(SerialSim.Trapped);
    ASSERT_FALSE(ParSim.Trapped);
    ASSERT_EQ(Par, Serial) << "input " << I;
  }
}

/// Cross-back-end check: the a64 simulator execution must agree with the
/// natively JIT-executed x64 compile of the same module — the strongest
/// available oracle for the new instruction compilers. FP is excluded:
/// the targets' fptosi overflow results differ by architecture (see
/// makeSimModule).
TEST(A64ParallelCorrectness, SimExecutionMatchesX64JIT) {
  tir::Module M = makeSimModule(53, 10, /*WithFloat=*/false);

  asmx::Assembler X64Asm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, X64Asm));
  asmx::JITMapper JIT;
  ASSERT_TRUE(JIT.map(X64Asm));
  auto *X64Fn = reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("main_entry"));
  ASSERT_NE(X64Fn, nullptr);

  asmx::Assembler A64Asm;
  ASSERT_TRUE(tpde_tir::compileModuleA64Parallel(M, A64Asm, 4));
  a64::Sim S;
  a64::SimModule Mod;
  ASSERT_TRUE(Mod.map(A64Asm, S));
  u64 Entry = Mod.address("main_entry");
  ASSERT_NE(Entry, 0u);

  for (u64 I = 0; I < 4; ++I) {
    u64 X64Res = X64Fn(I, I * 5 + 1);
    u64 A64Res = S.call(Entry, {I, I * 5 + 1});
    ASSERT_FALSE(S.Trapped);
    ASSERT_EQ(A64Res, X64Res) << "input " << I;
  }
}

/// Steady-state a64 recompilation through a reused pipeline must not
/// touch the heap — the allocation policy is a framework property the
/// second back-end inherits (docs/PERF.md).
TEST(A64ParallelReuse, SteadyStateIsAllocationFreeSingleWorker) {
  tir::Module M = makeModule(5, 16, true);
  tpde_tir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1;
  tpde_tir::ParallelModuleCompilerA64 PC(M, Opts);
  asmx::Assembler Out;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state a64 parallel recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
}

/// A failing shard must fail the whole a64 compile, mirroring the x64
/// driver semantics (shared template, shared behavior).
TEST(A64ParallelCorrectness, FailedShardFailsTheCompile) {
  tir::Module M = makeModule(3, 4, true);
  tir::Function &F = M.Funcs[1];
  for (tir::Value &V : F.Values) {
    if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Add) {
      V.Opcode = tir::Op::None; // no instruction compiler for None
      break;
    }
  }
  asmx::Assembler Out;
  EXPECT_FALSE(tpde_tir::compileModuleA64Parallel(M, Out, 2));
}

/// A module whose shard boundaries split mutually-calling functions needs
/// the cross-shard symbol resolution of Assembler::mergeFrom(); make sure
/// an undefined-but-called function surfaces as a JIT mapping failure
/// rather than silently mis-linking.
TEST(ParallelCorrectness, FailedShardFailsTheCompile) {
  tir::Module M = makeModule(3, 4, true);
  // Sabotage: an unsupported instruction (dynamic i128 shift) in one
  // function makes its shard fail; the whole compile must report failure.
  tir::Function &F = M.Funcs[1];
  for (tir::Value &V : F.Values) {
    if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Add) {
      V.Opcode = tir::Op::None; // no instruction compiler for None
      break;
    }
  }
  asmx::Assembler Out;
  EXPECT_FALSE(tpde_tir::compileModuleX64Parallel(M, Out, 2));
}

// --- On-demand (sparse) symbol materialization -----------------------------

/// The tentpole property of the sparse mode: a shard compile's symbol
/// table holds only the shard's own definitions plus what it actually
/// references — never the whole module table. With the old per-shard
/// registration pass this table held every function and global of the
/// module (an O(Funcs^2/FuncsPerShard) term over a module compile).
TEST(SparseShardSymbols, ShardTableIsProportionalToShardNotModule) {
  tir::Module M = makeModule(13, 300, true);
  tpde_tir::TirAdapter Adapter(M);
  asmx::Assembler Asm;
  tpde_tir::TirCompilerX64 Compiler(Adapter, Asm);
  ASSERT_TRUE(Compiler.compileRange(0, 2));
  EXPECT_LT(Asm.symbolCount(), 100u)
      << "a 2-function shard of a 300-function module materialized "
      << Asm.symbolCount() << " symbol records — the whole-module "
         "registration pass is back";
  // And the table really is usable: recompiling another range reuses the
  // rewound storage without heap traffic once warm.
  ASSERT_TRUE(Compiler.compileRange(2, 4));
  ASSERT_TRUE(Compiler.compileRange(0, 2));
  ASSERT_TRUE(Compiler.compileRange(2, 4));
  support::AllocWatch W;
  ASSERT_TRUE(Compiler.compileRange(0, 2));
  ASSERT_TRUE(Compiler.compileRange(2, 4));
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state sparse shard recompilation allocated";
}

// --- Large-module determinism (the 10k-function acceptance suite) ----------

namespace {

/// >= 10k small functions with call density: the scale where any
/// per-shard O(module) symbol work dominates a compile. Small bodies
/// keep the suite fast; CallPct keeps cross-shard references plentiful.
tir::Module makeLargeModule(u32 NumFuncs) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = 91;
  P.NumFuncs = NumFuncs;
  P.SSAForm = true;
  P.CallPct = 12;
  P.RegionBudget = 2;
  P.InstsPerBlock = 4;
  P.MaxLoopDepth = 1;
  P.MaxLoopTrip = 2;
  workloads::genModule(M, P);
  return M;
}

constexpr u32 LargeFuncs = 10000;

} // namespace

/// Serial and parallel compiles of a 10k-function module must produce
/// byte-identical .text/.rodata AND symbol tables for thread counts
/// {1,2,4,8}. The symbol-table comparison is made at the strongest
/// level: the full relocatable ELF object (the writer's canonical
/// symbol order makes serial registration order and parallel
/// first-reference order converge).
TEST(LargeModuleDeterminism, ElfIdenticalToSerialX64) {
  tir::Module M = makeLargeModule(LargeFuncs);
  ASSERT_GE(M.Funcs.size(), 10000u);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  std::vector<u8> SerialObj =
      asmx::writeElfObject(SerialAsm, asmx::ElfMachine::X86_64);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    asmx::Assembler Out;
    ASSERT_TRUE(tpde_tir::compileModuleX64Parallel(M, Out, Threads))
        << "threads=" << Threads;
    ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
    EXPECT_TRUE(Out.text().Data.size() == SerialAsm.text().Data.size() &&
                std::equal(Out.text().Data.begin(), Out.text().Data.end(),
                           SerialAsm.text().Data.begin()))
        << "merged .text diverged, threads=" << Threads;
    std::vector<u8> Obj = asmx::writeElfObject(Out, asmx::ElfMachine::X86_64);
    EXPECT_EQ(Obj, SerialObj)
        << "merged ELF object (sections/symtab/relocs) diverged from the "
           "serial compile, threads=" << Threads;
  }
}

TEST(LargeModuleDeterminism, ElfIdenticalToSerialA64) {
  tir::Module M = makeLargeModule(LargeFuncs);
  ASSERT_GE(M.Funcs.size(), 10000u);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleA64(M, SerialAsm));
  std::vector<u8> SerialObj =
      asmx::writeElfObject(SerialAsm, asmx::ElfMachine::AArch64);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    asmx::Assembler Out;
    ASSERT_TRUE(tpde_tir::compileModuleA64Parallel(M, Out, Threads))
        << "threads=" << Threads;
    ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
    std::vector<u8> Obj = asmx::writeElfObject(Out, asmx::ElfMachine::AArch64);
    EXPECT_EQ(Obj, SerialObj)
        << "merged a64 ELF object diverged from the serial compile, "
           "threads=" << Threads;
  }
}

/// The copy-merge fallback (InPlaceEmission=false) and the default
/// two-pass in-place path are the same merge resequenced — both must
/// reproduce the serial module's full ELF object, and emitStats() must
/// report which path ran plus a plausible cost breakdown (bytes placed
/// never exceed the merged text+data, stitch visits every shard reloc).
TEST(LargeModuleDeterminism, CopyMergeFallbackMatchesInPlace) {
  tir::Module M = makeModule(13, 40, true);
  asmx::Assembler SerialAsm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(M, SerialAsm));
  std::vector<u8> SerialObj =
      asmx::writeElfObject(SerialAsm, asmx::ElfMachine::X86_64);

  for (bool InPlace : {true, false}) {
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = 4;
    Opts.InPlaceEmission = InPlace;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    asmx::Assembler Out;
    ASSERT_TRUE(PC.compile(Out)) << "in_place=" << InPlace;
    const core::EmitStats &St = PC.emitStats();
    EXPECT_EQ(St.InPlace, InPlace);
    if (InPlace) {
      EXPECT_GT(St.PlacedBytes, 0u);
      EXPECT_LE(St.PlacedBytes,
                Out.text().Data.size() +
                    Out.section(asmx::SecKind::Data).Data.size())
          << "placed more bytes than the merged output holds";
    }
    EXPECT_GT(St.StitchRelocs, 0u) << "shard relocs went unstitched";
    EXPECT_EQ(asmx::writeElfObject(Out, asmx::ElfMachine::X86_64), SerialObj)
        << "in_place=" << InPlace
        << ": emission path diverged from the serial compile";
  }
}

// --- UIR: the database back-end through the same driver --------------------

namespace {

/// A generated many-query UIR module (the §7 Umbra scenario at scale),
/// with FP predicates mixed in so shard compiles populate FP pools that
/// must content-dedup across the merge.
uir::UModule makeQueryModule(u64 Seed, u32 NumQueries,
                             std::vector<uir::QueryPlan> *PlansOut =
                                 nullptr) {
  workloads::QueryProfile P;
  P.Seed = Seed;
  P.NumQueries = NumQueries;
  uir::UModule M;
  workloads::genQueryModule(M, P); // the production/bench path
  if (PlansOut)
    *PlansOut = workloads::genQueryPlans(P); // deterministic in the seed
  return M;
}

} // namespace

/// The tentpole property for the UIR instantiation: a many-query module
/// compiled with 1, 2, 4, and 8 threads produces a byte-identical
/// relocatable ELF object — sections, symbol table, relocations — equal
/// to the serial compileTpdeUir() output (full-object comparison, per
/// the LargeModuleDeterminism pattern).
TEST(UirParallelDeterminism, ElfIdenticalToSerialAcrossThreadCounts) {
  uir::UModule M = makeQueryModule(51, 400);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(uir::compileTpdeUir(M, SerialAsm));
  const asmx::Section &SerialRO = SerialAsm.section(asmx::SecKind::ROData);
  ASSERT_GT(SerialRO.size(), 0u)
      << "query set generated no FP constants — the pool dedup is untested";
  std::vector<u8> SerialObj =
      asmx::writeElfObject(SerialAsm, asmx::ElfMachine::X86_64);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    asmx::Assembler Out;
    ASSERT_TRUE(uir::compileModuleUirParallel(M, Out, Threads))
        << "threads=" << Threads;
    ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
    EXPECT_TRUE(Out.text().Data.size() == SerialAsm.text().Data.size() &&
                std::equal(Out.text().Data.begin(), Out.text().Data.end(),
                           SerialAsm.text().Data.begin()))
        << "merged UIR .text diverged from the serial compile, threads="
        << Threads;
    std::vector<u8> Obj = asmx::writeElfObject(Out, asmx::ElfMachine::X86_64);
    EXPECT_EQ(Obj, SerialObj)
        << "merged UIR ELF object (sections/symtab/relocs) diverged from "
           "the serial compile, threads=" << Threads;
  }
}

/// The 10k-function acceptance bar for the database back-end too: a
/// 10k-query module (the §7 many-query Umbra shape at scale) through
/// the default in-place emission path produces a byte-identical full
/// ELF object for thread counts {1,2,4,8} — the same contract the TIR
/// back-ends meet in LargeModuleDeterminism.
TEST(UirParallelDeterminism, LargeQueryModuleElfIdenticalToSerial) {
  uir::UModule M = makeQueryModule(77, LargeFuncs);
  ASSERT_GE(M.Funcs.size(), 10000u);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(uir::compileTpdeUir(M, SerialAsm));
  std::vector<u8> SerialObj =
      asmx::writeElfObject(SerialAsm, asmx::ElfMachine::X86_64);

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    asmx::Assembler Out;
    ASSERT_TRUE(uir::compileModuleUirParallel(M, Out, Threads))
        << "threads=" << Threads;
    ASSERT_FALSE(Out.hasError()) << Out.errorMessage();
    EXPECT_EQ(asmx::writeElfObject(Out, asmx::ElfMachine::X86_64), SerialObj)
        << "merged 10k-query UIR ELF object diverged from the serial "
           "compile, threads=" << Threads;
  }
}

/// End-to-end: every query of a parallel-compiled module must execute
/// with the same result as the serial compile AND the UIR interpreter —
/// queries land in different shards, so this exercises the merged
/// module's symbol/reloc integrity and the FP-predicate path
/// (rematerialized f64 constants) under sharding.
TEST(UirParallelCorrectness, JITExecutionMatchesSerialAndInterpreter) {
  std::vector<uir::QueryPlan> Plans;
  uir::UModule M = makeQueryModule(63, 48, &Plans);
  uir::Table T(8, 4000, /*Seed=*/5);

  asmx::Assembler SerialAsm;
  ASSERT_TRUE(uir::compileTpdeUir(M, SerialAsm));
  asmx::JITMapper SerialJIT;
  ASSERT_TRUE(SerialJIT.map(SerialAsm));

  asmx::Assembler ParAsm;
  ASSERT_TRUE(uir::compileModuleUirParallel(M, ParAsm, 4));
  asmx::JITMapper ParJIT;
  ASSERT_TRUE(ParJIT.map(ParAsm));

  for (const uir::QueryPlan &P : Plans) {
    auto *SerialQ = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        SerialJIT.address(P.Name));
    auto *ParQ = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        ParJIT.address(P.Name));
    ASSERT_NE(SerialQ, nullptr) << P.Name;
    ASSERT_NE(ParQ, nullptr) << P.Name;
    i64 Expected = uir::evalPlan(P, T);
    i64 Serial = SerialQ(T.ColPtrs.data(), static_cast<i64>(T.Rows));
    i64 Par = ParQ(T.ColPtrs.data(), static_cast<i64>(T.Rows));
    EXPECT_EQ(Serial, Expected) << P.Name << " (serial vs interpreter)";
    EXPECT_EQ(Par, Expected) << P.Name << " (parallel vs interpreter)";
  }
}

/// Steady-state UIR recompilation through a reused pipeline must not
/// touch the heap — the allocation policy is a framework property the
/// database back-end inherits (docs/PERF.md).
TEST(UirParallelReuse, SteadyStateIsAllocationFreeSingleWorker) {
  uir::UModule M = makeQueryModule(5, 40);
  uir::ParallelCompileOptions Opts;
  Opts.NumThreads = 1;
  uir::ParallelModuleCompilerUir PC(M, Opts);
  asmx::Assembler Out;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(PC.compile(Out));
  support::AllocWatch W;
  ASSERT_TRUE(PC.compile(Out));
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state UIR parallel recompilation allocated " << W.newCalls()
      << " times (" << W.newBytes() << " bytes)";
}

/// The serial reuse path (module-level symbol batching) holds for the
/// database back-end too: recompiling a query module through one
/// compiler is byte-identical and allocation-free once warm.
TEST(UirParallelReuse, SerialRecompileIsByteIdenticalAndAllocationFree) {
  uir::UModule M = makeQueryModule(7, 24);
  uir::UirAdapter A(M);
  asmx::Assembler Asm;
  uir::UirCompilerX64 C(A, Asm);
  ASSERT_TRUE(C.compileReuse());
  std::vector<u8> First(Asm.text().Data.begin(), Asm.text().Data.end());
  for (int I = 0; I < 2; ++I)
    ASSERT_TRUE(C.compileReuse());
  support::AllocWatch W;
  ASSERT_TRUE(C.compileReuse());
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state UIR recompile allocated " << W.newCalls() << " times";
  EXPECT_TRUE(Asm.text().Data.size() == First.size() &&
              std::equal(Asm.text().Data.begin(), Asm.text().Data.end(),
                         First.begin()))
      << "recompiled .text diverged from the first compile";
}

/// UirAdapter reports External linkage with every function a definition,
/// so two queries sharing a name are duplicate strong definitions. The
/// sharded path must diagnose that (duplicate-strong error at merge),
/// never silently merge the queries — and the serial path must agree.
TEST(UirParallelCorrectness, DuplicateQueryNamesAreDiagnosed) {
  uir::QueryPlan P;
  P.Name = "dup_query";
  P.Preds = {{0, uir::UOp::CmpLt, 10}};
  uir::UModule M;
  uir::compilePlan(M, P);
  P.Preds[0].K = 99; // different body, same strong name
  uir::compilePlan(M, P);

  asmx::Assembler SerialAsm;
  EXPECT_FALSE(uir::compileTpdeUir(M, SerialAsm))
      << "serial compile silently merged duplicate query names";

  uir::ParallelCompileOptions Opts;
  Opts.NumThreads = 2;
  Opts.FuncsPerShard = 1; // force the definitions into different shards
  uir::ParallelModuleCompilerUir PC(M, Opts);
  asmx::Assembler Out;
  EXPECT_FALSE(PC.compile(Out))
      << "parallel compile silently merged duplicate query names";
  EXPECT_TRUE(Out.hasError());
  EXPECT_NE(Out.errorMessage().find("dup_query"), std::string_view::npos)
      << "error does not name the duplicate symbol: " << Out.errorMessage();
}
