//===- tests/service_test.cpp - Compile service & code cache --------------===//
///
/// The serving-layer suite (docs/SERVICE.md):
///
///  * Cache correctness: a cache hit returns byte-identical mapped code
///    to a fresh compile — for the UIR and the TIR/x64 paths — and the
///    batched service compile itself matches a solo compile byte for
///    byte (the job-aligned sharding contract of
///    core::ParallelModuleCompiler::compileJobs).
///  * Fingerprints: sensitive to every content field, insensitive to the
///    adapter scratch slots compilation mutates and to debug names.
///  * Single-flight: concurrent producers of one fingerprint trigger
///    exactly one compile; everyone shares the published code.
///  * Eviction: the byte budget is enforced by epoch-LRU eviction, and
///    an evicted fingerprint recompiles correctly.
///  * Robustness: a malformed job is rejected at admission with a
///    structured diagnostic; an uncompilable job inside a batch fails
///    alone while its batch neighbors are served; the fault-injection
///    shard-compile site inside the service path recovers (fault builds).
///  * Support primitives: bounded MPMC queue semantics, latency
///    histogram quantiles.
///  * Overload control (docs/SERVICE.md, "Overload control"): admission
///    queue unit tests (token-bucket quotas, weighted-fair dequeue, the
///    retry lane, bounded-wait admission), structured Overloaded /
///    ServiceShutdown / DeadlineExceeded errors, deadline shed for
///    queued jobs and independent waiter timeout, transient-failure
///    retry (fault builds), the stuck-batch watchdog, and liveness of a
///    flooded service with a fault site armed across worker counts.
///
//===----------------------------------------------------------------------===//

#include "service/Admission.h"
#include "support/FaultInjector.h"
#include "support/Histogram.h"
#include "support/MpmcQueue.h"
#include "tpde_tir/Service.h"
#include "uir/Service.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace tpde;
using support::CompileErr;
using support::Fp128;

namespace {

// --- helpers ---------------------------------------------------------------

/// A single-query UIR module; \p Variant perturbs the plan so distinct
/// variants have distinct content (and fingerprints).
uir::UModule makeQueryModule(const std::string &Name, u32 Variant) {
  uir::QueryPlan P;
  P.Name = Name;
  P.Preds = {{1, uir::UOp::CmpLt, 200 + static_cast<i64>(Variant)},
             {2, uir::UOp::CmpNe, 77}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = static_cast<i64>(Variant);
  uir::UModule M;
  uir::compilePlan(M, P);
  return M;
}

uir::QueryPlan planOf(const std::string &Name, u32 Variant) {
  uir::QueryPlan P;
  P.Name = Name;
  P.Preds = {{1, uir::UOp::CmpLt, 200 + static_cast<i64>(Variant)},
             {2, uir::UOp::CmpNe, 77}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = static_cast<i64>(Variant);
  return P;
}

/// A generated TIR module with every function name prefixed so several
/// jobs can share a batch (calls reference functions by index, so
/// renaming is content-neutral for codegen).
tir::Module makeTirJob(u64 Seed, u32 NumFuncs, const std::string &Prefix) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = true;
  P.CallPct = 12;
  workloads::genModule(M, P);
  for (tir::Function &F : M.Funcs)
    F.Name = Prefix + "_" + F.Name;
  return M;
}

/// Makes one function uncompilable (Op::None) but verifier-clean, as in
/// robustness_test.cpp.
void sabotageTir(tir::Module &M, u32 FuncIdx) {
  for (tir::Value &V : M.Funcs[FuncIdx].Values)
    if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Add) {
      V.Opcode = tir::Op::None;
      return;
    }
  FAIL() << "no Add to sabotage in function " << FuncIdx;
}

std::vector<u8> mappedText(const service::CachedCode &C) {
  auto T = C.textBytes();
  return {T.begin(), T.end()};
}

/// Fresh solo compile + map of a UIR module; returns the mapped text.
std::vector<u8> soloUirMappedText(uir::UModule M) {
  asmx::Assembler Asm;
  EXPECT_TRUE(uir::compileTpdeUir(M, Asm));
  asmx::JITMapper JIT;
  EXPECT_TRUE(JIT.map(Asm));
  const u8 *Base = JIT.sectionBase(asmx::SecKind::Text);
  return {Base, Base + Asm.text().size()};
}

std::vector<u8> soloTirMappedText(tir::Module M) {
  asmx::Assembler Asm;
  EXPECT_TRUE(tpde_tir::compileModuleX64(M, Asm));
  asmx::JITMapper JIT;
  EXPECT_TRUE(JIT.map(Asm));
  const u8 *Base = JIT.sectionBase(asmx::SecKind::Text);
  return {Base, Base + Asm.text().size()};
}

using QueryFn = i64 (*)(const i64 *const *, i64);

} // namespace

// --- support primitives ----------------------------------------------------

TEST(MpmcQueue, FifoCloseAndDrainSemantics) {
  support::BoundedMpmcQueue<int> Q(4);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.tryPush(3));
  EXPECT_TRUE(Q.tryPush(4));
  EXPECT_FALSE(Q.tryPush(5)) << "queue is bounded";
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1) << "FIFO order";
  Q.close();
  EXPECT_FALSE(Q.push(6)) << "closed queue rejects producers";
  EXPECT_TRUE(Q.pop(V)) << "close drains remaining items";
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(Q.pop(V));
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 4);
  EXPECT_FALSE(Q.pop(V)) << "closed and drained";
}

TEST(MpmcQueue, BlockingHandoffAcrossThreads) {
  support::BoundedMpmcQueue<int> Q(2);
  i64 Sum = 0;
  std::thread Consumer([&] {
    int V;
    while (Q.pop(V))
      Sum += V;
  });
  for (int I = 1; I <= 100; ++I)
    EXPECT_TRUE(Q.push(I));
  Q.close();
  Consumer.join();
  EXPECT_EQ(Sum, 5050);
}

TEST(LatencyHistogram, QuantilesAreConservativeUpperBounds) {
  support::LatencyHistogram H;
  for (u64 I = 1; I <= 1000; ++I)
    H.record(I * 1000); // 1us .. 1ms
  EXPECT_EQ(H.count(), 1000u);
  u64 P50 = H.quantileNs(0.50);
  u64 P99 = H.quantileNs(0.99);
  EXPECT_GE(P50, 500'000u) << "p50 must not under-report";
  EXPECT_LE(P50, 500'000u + 500'000u / 8) << "within one sub-bucket width";
  EXPECT_GE(P99, 990'000u);
  EXPECT_LE(P99, 990'000u + 990'000u / 8);
  EXPECT_LE(P50, P99);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantileNs(0.5), 0u);
}

// --- fingerprints ----------------------------------------------------------

TEST(Fingerprint, UirSensitiveToContentInsensitiveToScratch) {
  uir::UModule A = makeQueryModule("q", 1);
  uir::UModule B = makeQueryModule("q", 1);
  EXPECT_EQ(uir::fingerprintModule(A), uir::fingerprintModule(B))
      << "same content, same fingerprint";
  uir::UModule C = makeQueryModule("q", 2);
  EXPECT_NE(uir::fingerprintModule(A), uir::fingerprintModule(C))
      << "a changed constant must change the fingerprint";
  uir::UModule D = makeQueryModule("r", 1);
  EXPECT_NE(uir::fingerprintModule(A), uir::fingerprintModule(D))
      << "the query name is part of the content (it names the symbol)";

  // Compilation writes the adapter scratch slot (UBlock::Aux); the
  // fingerprint must not see it, or a compiled module would never hit.
  Fp128 Before = uir::fingerprintModule(A);
  asmx::Assembler Asm;
  ASSERT_TRUE(uir::compileTpdeUir(A, Asm));
  EXPECT_EQ(uir::fingerprintModule(A), Before)
      << "fingerprint must be stable across compilation";
}

TEST(Fingerprint, TirInsensitiveToDebugNamesAndScratch) {
  tir::Module A = makeTirJob(5, 4, "fp");
  Fp128 Before = tpde_tir::fingerprintModule(A);

  tir::Module B = makeTirJob(5, 4, "fp");
  B.Funcs[0].setValueName(2, "debug_name");
  B.Funcs[1].Blocks[0].Name = "entry_renamed";
  EXPECT_EQ(tpde_tir::fingerprintModule(B), Before)
      << "debug names are not content";

  asmx::Assembler Asm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(A, Asm));
  EXPECT_EQ(tpde_tir::fingerprintModule(A), Before)
      << "fingerprint must be stable across compilation";

  tir::Module C = makeTirJob(6, 4, "fp");
  EXPECT_NE(tpde_tir::fingerprintModule(C), Before);
}

// --- cache correctness -----------------------------------------------------

TEST(ServiceCache, UirHitIsByteIdenticalToFreshCompile) {
  std::vector<u8> Solo = soloUirMappedText(makeQueryModule("svc_q0", 3));

  uir::UirCompileService Svc({.NumWorkers = 1});
  auto Miss = Svc.submit(makeQueryModule("svc_q0", 3));
  Miss->wait();
  ASSERT_TRUE(Miss->ok()) << Miss->status().Message;
  EXPECT_FALSE(Miss->hit());
  EXPECT_EQ(mappedText(*Miss->code()), Solo)
      << "service-compiled code must match a solo compile byte for byte";

  auto Hit = Svc.submit(makeQueryModule("svc_q0", 3));
  Hit->wait();
  ASSERT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
  EXPECT_EQ(Hit->code().get(), Miss->code().get())
      << "a hit shares the published mapping";
  EXPECT_EQ(mappedText(*Hit->code()), Solo);

  // The served code executes correctly.
  uir::Table T(6, 10'000, /*Seed=*/11);
  auto *Q = reinterpret_cast<QueryFn>(Hit->address("svc_q0"));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)),
            uir::evalPlan(planOf("svc_q0", 3), T));

  auto S = Svc.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.CachedEntries, 1u);
  EXPECT_GT(S.CachedBytes, 0u);
}

TEST(ServiceCache, TirX64HitIsByteIdenticalToFreshCompile) {
  std::vector<u8> Solo = soloTirMappedText(makeTirJob(21, 6, "jobA"));

  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1});
  auto Miss = Svc.submit(makeTirJob(21, 6, "jobA"));
  Miss->wait();
  ASSERT_TRUE(Miss->ok()) << Miss->status().Message;
  EXPECT_FALSE(Miss->hit());
  EXPECT_EQ(mappedText(*Miss->code()), Solo);

  auto Hit = Svc.submit(makeTirJob(21, 6, "jobA"));
  Hit->wait();
  ASSERT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
  EXPECT_EQ(Hit->code().get(), Miss->code().get());

  auto S = Svc.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST(ServiceCache, BatchedJobsMatchSoloCompiles) {
  // Queue three distinct jobs against a paused worker so they are
  // guaranteed to be compiled as ONE batch, then check every job's
  // output against its solo compile — the job-aligned sharding contract.
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(31, 5, "ba"));
  std::vector<u8> SoloB = soloTirMappedText(makeTirJob(32, 5, "bb"));
  std::vector<u8> SoloC = soloTirMappedText(makeTirJob(33, 5, "bc"));

  tpde_tir::TirCompileServiceX64 Svc(
      {.NumWorkers = 1, .MaxBatchJobs = 8, .StartPaused = true});
  auto RA = Svc.submit(makeTirJob(31, 5, "ba"));
  auto RB = Svc.submit(makeTirJob(32, 5, "bb"));
  auto RC = Svc.submit(makeTirJob(33, 5, "bc"));
  Svc.resume();
  RA->wait();
  RB->wait();
  RC->wait();
  ASSERT_TRUE(RA->ok() && RB->ok() && RC->ok());
  EXPECT_EQ(mappedText(*RA->code()), SoloA);
  EXPECT_EQ(mappedText(*RB->code()), SoloB);
  EXPECT_EQ(mappedText(*RC->code()), SoloC);
}

TEST(ServiceCache, EvictionUnderByteBudget) {
  // Measure one entry's mapped footprint, then budget for ~3 entries.
  u64 EntryBytes;
  {
    uir::UModule M = makeQueryModule("ev_probe", 0);
    asmx::Assembler Asm;
    ASSERT_TRUE(uir::compileTpdeUir(M, Asm));
    asmx::JITMapper JIT;
    ASSERT_TRUE(JIT.map(Asm));
    EntryBytes = JIT.mappedSize();
    ASSERT_GT(EntryBytes, 0u);
  }
  const u64 Budget = EntryBytes * 3 + EntryBytes / 2;

  uir::UirCompileService Svc({.NumWorkers = 1, .CacheBudgetBytes = Budget});
  for (u32 I = 0; I < 6; ++I) {
    auto R = Svc.submit(makeQueryModule("ev" + std::to_string(I), I));
    R->wait();
    ASSERT_TRUE(R->ok()) << R->status().Message;
  }
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 6u);
  EXPECT_GT(S.Evictions, 0u) << "6 entries cannot fit a ~3-entry budget";
  EXPECT_LE(S.CachedBytes, Budget) << "budget must be enforced";

  // The least-recently-used fingerprint (ev0) was evicted: resubmitting
  // recompiles it — correctly.
  auto R0 = Svc.submit(makeQueryModule("ev0", 0));
  R0->wait();
  ASSERT_TRUE(R0->ok());
  EXPECT_FALSE(R0->hit()) << "evicted entries miss again";
  EXPECT_EQ(Svc.stats().Misses, 7u);
  uir::Table T(6, 5'000, /*Seed=*/3);
  auto *Q = reinterpret_cast<QueryFn>(R0->address("ev0"));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)),
            uir::evalPlan(planOf("ev0", 0), T));
}

TEST(ServiceCache, SingleFlightUnderConcurrentProducers) {
  // 8 producers submit the same content while the worker is parked: one
  // becomes the owner, everyone else coalesces onto the in-flight entry.
  uir::UirCompileService Svc({.NumWorkers = 1, .StartPaused = true});
  constexpr unsigned N = 8;
  std::vector<service::ResultPtr> Results(N);
  {
    std::vector<std::thread> Producers;
    for (unsigned I = 0; I < N; ++I)
      Producers.emplace_back([&, I] {
        Results[I] = Svc.submit(makeQueryModule("sf_q", 9));
      });
    for (auto &P : Producers)
      P.join();
  }
  Svc.resume();
  for (auto &R : Results) {
    R->wait();
    ASSERT_TRUE(R->ok()) << R->status().Message;
  }
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 1u) << "the same fingerprint must compile exactly once";
  EXPECT_EQ(S.Coalesced, N - 1);
  EXPECT_EQ(S.Hits, 0u);
  for (auto &R : Results)
    EXPECT_EQ(R->code().get(), Results[0]->code().get())
        << "all producers share the single published mapping";
}

// --- robustness ------------------------------------------------------------

TEST(ServiceRobustness, MalformedJobRejectedAtAdmission) {
  uir::UirCompileService Svc({.NumWorkers = 1});
  // Duplicate query names: structurally fine, rejected by uir::verifyModule.
  uir::UModule Bad = makeQueryModule("dup", 1);
  uir::UModule Twin = makeQueryModule("dup", 1);
  Bad.Funcs.push_back(Twin.Funcs[0]);
  auto R = Svc.submit(std::move(Bad));
  EXPECT_TRUE(R->done()) << "verify rejection completes synchronously";
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::VerifyFailed);
  auto S = Svc.stats();
  EXPECT_EQ(S.VerifyRejected, 1u);
  EXPECT_EQ(S.Misses, 0u) << "rejected jobs never touch the cache";
  EXPECT_EQ(S.CachedEntries, 0u);

  // The pool is not poisoned: a good job still compiles.
  auto Good = Svc.submit(makeQueryModule("after_bad", 2));
  Good->wait();
  EXPECT_TRUE(Good->ok());
}

TEST(ServiceRobustness, UncompilableJobFailsAloneBatchNeighborsServed) {
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(41, 5, "ga"));
  std::vector<u8> SoloC = soloTirMappedText(makeTirJob(43, 5, "gc"));

  // Verify off: the sabotaged module is verifier-clean (Op::None only
  // fails in the instruction compiler) — this exercises the driver's
  // graceful-degradation path inside a service batch.
  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1,
                                      .MaxBatchJobs = 8,
                                      .Verify = false,
                                      .StartPaused = true});
  tir::Module BadJob = makeTirJob(42, 5, "gbad");
  sabotageTir(BadJob, 2);

  auto RA = Svc.submit(makeTirJob(41, 5, "ga"));
  auto RB = Svc.submit(std::move(BadJob));
  auto RC = Svc.submit(makeTirJob(43, 5, "gc"));
  Svc.resume();
  RA->wait();
  RB->wait();
  RC->wait();

  ASSERT_TRUE(RA->ok()) << RA->status().Message;
  ASSERT_TRUE(RC->ok()) << RC->status().Message;
  EXPECT_EQ(mappedText(*RA->code()), SoloA)
      << "a failing batch neighbor must not perturb a good job's bytes";
  EXPECT_EQ(mappedText(*RC->code()), SoloC);

  EXPECT_FALSE(RB->ok());
  EXPECT_EQ(RB->status().Err, CompileErr::UnsupportedInst);
  auto S = Svc.stats();
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.CachedEntries, 2u) << "the failed fingerprint is never cached";

  // Failure is not sticky: the failed fingerprint can be resubmitted
  // (here: the repaired module compiles under a new fingerprint, and the
  // service keeps serving).
  auto RFixed = Svc.submit(makeTirJob(42, 5, "gbad"));
  RFixed->wait();
  EXPECT_TRUE(RFixed->ok());
}

TEST(ServiceRobustness, ShardFaultMidBatchRecoversAllJobs) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(51, 5, "fa"));
  std::vector<u8> SoloB = soloTirMappedText(makeTirJob(52, 5, "fb"));

  tpde_tir::TirCompileServiceX64 Svc(
      {.NumWorkers = 1, .MaxBatchJobs = 8, .StartPaused = true});
  auto RA = Svc.submit(makeTirJob(51, 5, "fa"));
  auto RB = Svc.submit(makeTirJob(52, 5, "fb"));
  support::FaultInjector::arm(support::FaultSite::ShardCompile, 1);
  Svc.resume();
  RA->wait();
  RB->wait();
  support::FaultInjector::disarm(support::FaultSite::ShardCompile);

  // The injected shard failure is absorbed by the driver's recovery pass
  // (function-by-function retry): both jobs are served, byte-identical.
  ASSERT_TRUE(RA->ok()) << RA->status().Message;
  ASSERT_TRUE(RB->ok()) << RB->status().Message;
  EXPECT_EQ(mappedText(*RA->code()), SoloA);
  EXPECT_EQ(mappedText(*RB->code()), SoloB);
}

// --- admission queue -------------------------------------------------------

TEST(AdmissionQueueTest, WeightedFairDequeueHonorsWeights) {
  service::AdmissionQueue<int> Q(64);
  Q.setTenantConfig(1, {.Weight = 3});
  Q.setTenantConfig(2, {.Weight = 1});
  // Both tenants fully backlogged before any pop: the dequeue stream must
  // interleave them 3:1, not serve the first tenant to completion.
  for (int I = 0; I < 24; ++I)
    ASSERT_EQ(Q.tryPush(1000 + I, /*Tid=*/1, /*NowNs=*/0),
              service::Admit::Ok);
  for (int I = 0; I < 24; ++I)
    ASSERT_EQ(Q.tryPush(2000 + I, /*Tid=*/2, /*NowNs=*/0),
              service::Admit::Ok);
  int FromT1 = 0, FromT2 = 0;
  for (int I = 0; I < 16; ++I) {
    int V = -1;
    ASSERT_TRUE(Q.tryPop(V));
    (V < 2000 ? FromT1 : FromT2)++;
  }
  EXPECT_EQ(FromT1, 12) << "weight-3 tenant gets 3/4 of the dequeues";
  EXPECT_EQ(FromT2, 4) << "weight-1 tenant is not starved";
  // Per-tenant order stays FIFO.
  int V = -1;
  int LastT1 = -1;
  while (Q.tryPop(V))
    if (V < 2000) {
      EXPECT_GT(V, LastT1);
      LastT1 = V;
    }
}

TEST(AdmissionQueueTest, TokenBucketQuotaExhaustsAndRefills) {
  service::AdmissionQueue<int> Q(64);
  Q.setTenantConfig(7, {.TokensPerSec = 2.0, .BurstTokens = 4.0});
  const u64 T0 = 1'000'000'000;
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Q.tryPush(I, 7, T0), service::Admit::Ok) << "burst allows 4";
  EXPECT_EQ(Q.tryPush(4, 7, T0), service::Admit::QuotaExceeded);
  // One second later the bucket refilled exactly two tokens.
  const u64 T1 = T0 + 1'000'000'000;
  EXPECT_EQ(Q.tryPush(5, 7, T1), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(6, 7, T1), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(7, 7, T1), service::Admit::QuotaExceeded);
  // A long idle period refills to the burst cap, not beyond it.
  const u64 T2 = T1 + 100'000'000'000;
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Q.tryPush(I, 7, T2), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(4, 7, T2), service::Admit::QuotaExceeded);
  // Another tenant is unmetered and unaffected.
  EXPECT_EQ(Q.tryPush(0, 8, T2), service::Admit::Ok);
}

TEST(AdmissionQueueTest, PerTenantBackstopAndSharedCapacity) {
  service::AdmissionQueue<int> Q(4);
  Q.setTenantConfig(1, {.MaxQueued = 2});
  EXPECT_EQ(Q.tryPush(10, 1, 0), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(11, 1, 0), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(12, 1, 0), service::Admit::Overloaded)
      << "per-tenant backstop caps tenant 1 at 2 queued jobs";
  EXPECT_EQ(Q.tryPush(20, 2, 0), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(21, 2, 0), service::Admit::Ok);
  EXPECT_EQ(Q.tryPush(22, 2, 0), service::Admit::Overloaded)
      << "shared ring capacity still bounds the whole queue";
  EXPECT_EQ(Q.size(), 4u);
  Q.close();
  EXPECT_EQ(Q.tryPush(13, 1, 0), service::Admit::Closed);
  int V;
  for (int I = 0; I < 4; ++I)
    EXPECT_TRUE(Q.pop(V)) << "close drains queued jobs";
  EXPECT_FALSE(Q.pop(V));
}

TEST(AdmissionQueueTest, RetryLaneHeldUntilDueThenDrainedOnClose) {
  service::AdmissionQueue<int> Q(8);
  ASSERT_EQ(Q.tryPush(1, 0, 0), service::Admit::Ok);
  const u64 Due = tpde::nowNs() + 20'000'000; // 20ms out
  Q.pushRetry(99, Due);
  int V = -1;
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1) << "an undue retry must not pre-empt queued work";
  EXPECT_FALSE(Q.tryPop(V)) << "the retry is not poppable before due";
  EXPECT_EQ(Q.retryCount(), 1u);
  ASSERT_TRUE(Q.pop(V)) << "pop blocks until the retry comes due";
  EXPECT_EQ(V, 99);
  EXPECT_GE(tpde::nowNs(), Due) << "the retry was held until its due time";
  // After close(), retries are drained immediately regardless of due time
  // (shutdown must not stall on backoff).
  Q.pushRetry(100, tpde::nowNs() + 3'600'000'000'000ull);
  Q.close();
  ASSERT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 100);
  EXPECT_FALSE(Q.pop(V));
}

TEST(AdmissionQueueTest, PushWaitIsBoundedAndUnblocksOnSpace) {
  service::AdmissionQueue<int> Q(1);
  ASSERT_EQ(Q.tryPush(1, 0, tpde::nowNs()), service::Admit::Ok);
  // Full ring + nobody popping: pushWait gives up after the bounded wait.
  const u64 T0 = tpde::nowNs();
  EXPECT_EQ(Q.pushWait(2, 0, T0, 30'000'000), service::Admit::Overloaded);
  EXPECT_GE(tpde::nowNs() - T0, 25'000'000u) << "the wait is really taken";
  // With a consumer, the same pushWait admits as soon as space frees up.
  std::thread Consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    int V;
    EXPECT_TRUE(Q.tryPop(V));
  });
  EXPECT_EQ(Q.pushWait(3, 0, tpde::nowNs(), 2'000'000'000),
            service::Admit::Ok);
  Consumer.join();
  // Quota rejections never wait, even with a huge budget.
  Q.setTenantConfig(5, {.BurstTokens = 1.0});
  int Dummy;
  ASSERT_TRUE(Q.tryPop(Dummy)); // make room so capacity is not the limiter
  ASSERT_EQ(Q.pushWait(4, 5, tpde::nowNs(), 2'000'000'000),
            service::Admit::Ok);
  ASSERT_TRUE(Q.tryPop(Dummy));
  const u64 T1 = tpde::nowNs();
  EXPECT_EQ(Q.pushWait(5, 5, T1, 2'000'000'000),
            service::Admit::QuotaExceeded);
  EXPECT_LT(tpde::nowNs() - T1, 1'000'000'000u)
      << "quota exhaustion rejects immediately, it is not waited out";
}

// Regression: pushWait used to wait out per-tenant MaxQueued rejections as
// if they were ring-capacity overloads, burning the caller's whole wait
// budget on a condition that freeing ring space cannot clear. The contract
// (Admission.h) is that only a full shared ring is worth waiting on.
TEST(AdmissionQueueTest, PushWaitDoesNotWaitOutTenantCap) {
  service::AdmissionQueue<int> Q(16);
  Q.setTenantConfig(7, {.MaxQueued = 1});
  ASSERT_EQ(Q.tryPush(1, 7, tpde::nowNs()), service::Admit::Ok);
  const u64 T0 = tpde::nowNs();
  EXPECT_EQ(Q.pushWait(2, 7, T0, 2'000'000'000), service::Admit::Overloaded);
  EXPECT_LT(tpde::nowNs() - T0, 1'000'000'000u)
      << "the per-tenant cap must reject immediately; the ring has space";
  // Once the tenant's queued job drains, the same push is admitted.
  int V;
  ASSERT_TRUE(Q.tryPop(V));
  EXPECT_EQ(Q.pushWait(3, 7, tpde::nowNs(), 2'000'000'000),
            service::Admit::Ok);
}

// --- service overload control ----------------------------------------------

TEST(ServiceOverload, TrySubmitOnFullQueueReportsOverloaded) {
  uir::UirCompileService Svc(
      {.NumWorkers = 1, .QueueCapacity = 2, .StartPaused = true});
  auto R1 = Svc.trySubmit(makeQueryModule("ov0", 0));
  auto R2 = Svc.trySubmit(makeQueryModule("ov1", 1));
  auto R3 = Svc.trySubmit(makeQueryModule("ov2", 2));
  EXPECT_FALSE(R1->done());
  EXPECT_FALSE(R2->done());
  ASSERT_TRUE(R3->done()) << "rejection completes synchronously";
  EXPECT_FALSE(R3->ok());
  EXPECT_EQ(R3->status().Err, CompileErr::Overloaded);
  EXPECT_EQ(Svc.stats().Overloaded, 1u);
  Svc.resume();
  R1->wait();
  R2->wait();
  EXPECT_TRUE(R1->ok() && R2->ok()) << "queued jobs are unaffected";
  // The shed fingerprint is not poisoned: resubmitting compiles it.
  auto R3b = Svc.submit(makeQueryModule("ov2", 2));
  R3b->wait();
  EXPECT_TRUE(R3b->ok());
  EXPECT_FALSE(R3b->hit());
}

TEST(ServiceOverload, SubmitAfterShutdownReportsServiceShutdown) {
  uir::UirCompileService Svc({.NumWorkers = 1});
  auto Before = Svc.submit(makeQueryModule("sd0", 0));
  Before->wait();
  ASSERT_TRUE(Before->ok());
  Svc.shutdown();
  // A distinct module must be refused with the structured shutdown code.
  auto After = Svc.submit(makeQueryModule("sd1", 1));
  ASSERT_TRUE(After->done());
  EXPECT_FALSE(After->ok());
  EXPECT_EQ(After->status().Err, CompileErr::ServiceShutdown);
  EXPECT_NE(After->status().Message.find("shut down"), std::string::npos);
  // A cache hit is still served after shutdown — the code exists.
  auto Hit = Svc.submit(makeQueryModule("sd0", 0));
  ASSERT_TRUE(Hit->done());
  EXPECT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
}

TEST(ServiceOverload, TenantQuotasBoundConcurrentFloods) {
  // 8 tenants flood concurrently; each has a fixed no-refill quota of 3.
  // Exactly 3 jobs per tenant are admitted (and all complete), the rest
  // fail Overloaded — no tenant can eat another tenant's share.
  constexpr unsigned NumTenants = 8;
  constexpr unsigned PerTenant = 10;
  constexpr unsigned Quota = 3;
  uir::UirCompileService Svc({.NumWorkers = 2, .QueueCapacity = 64});
  for (unsigned T = 0; T < NumTenants; ++T)
    Svc.setTenantConfig(T + 1, {.BurstTokens = static_cast<double>(Quota)});
  std::vector<std::vector<service::ResultPtr>> Rs(NumTenants);
  {
    std::vector<std::thread> Floods;
    for (unsigned T = 0; T < NumTenants; ++T)
      Floods.emplace_back([&, T] {
        for (unsigned I = 0; I < PerTenant; ++I)
          Rs[T].push_back(Svc.submit(
              makeQueryModule("qt" + std::to_string(T) + "_" +
                                  std::to_string(I),
                              T * 100 + I),
              {.Tenant = T + 1}));
      });
    for (auto &F : Floods)
      F.join();
  }
  for (unsigned T = 0; T < NumTenants; ++T) {
    unsigned Served = 0, Rejected = 0;
    for (auto &R : Rs[T]) {
      R->wait();
      if (R->ok()) {
        ++Served;
      } else {
        EXPECT_EQ(R->status().Err, CompileErr::Overloaded);
        EXPECT_NE(R->status().Message.find("quota"), std::string::npos);
        ++Rejected;
      }
    }
    EXPECT_EQ(Served, Quota) << "tenant " << T + 1;
    EXPECT_EQ(Rejected, PerTenant - Quota) << "tenant " << T + 1;
  }
  EXPECT_EQ(Svc.stats().Overloaded, NumTenants * (PerTenant - Quota));
}

TEST(ServiceCache, ConflictingJobsCarryToNextBatchAndCompile) {
  // A and B share function names (same prefix, different content), so
  // they cannot share a batch module; C is independent. The conflicting
  // job and the popped tail behind it must be *carried* into the
  // worker's next batch — never failed, never re-queued into a possibly
  // full ring — and every job's bytes must still match its solo compile.
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(61, 5, "cf"));
  std::vector<u8> SoloB = soloTirMappedText(makeTirJob(62, 5, "cf"));
  std::vector<u8> SoloC = soloTirMappedText(makeTirJob(63, 5, "cfz"));

  tpde_tir::TirCompileServiceX64 Svc(
      {.NumWorkers = 1, .MaxBatchJobs = 8, .StartPaused = true});
  auto RA = Svc.submit(makeTirJob(61, 5, "cf"));
  auto RB = Svc.submit(makeTirJob(62, 5, "cf"));
  auto RC = Svc.submit(makeTirJob(63, 5, "cfz"));
  Svc.resume();
  RA->wait();
  RB->wait();
  RC->wait();
  ASSERT_TRUE(RA->ok()) << RA->status().Message;
  ASSERT_TRUE(RB->ok()) << RB->status().Message;
  ASSERT_TRUE(RC->ok()) << RC->status().Message;
  EXPECT_EQ(mappedText(*RA->code()), SoloA);
  EXPECT_EQ(mappedText(*RB->code()), SoloB);
  EXPECT_EQ(mappedText(*RC->code()), SoloC);
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Failed, 0u) << "deferred jobs must not be failed";
}

// --- deadlines -------------------------------------------------------------

TEST(ServiceDeadline, QueuedJobShedAtDequeueNeverCompiled) {
  uir::UirCompileService Svc({.NumWorkers = 1, .StartPaused = true});
  auto R = Svc.submit(makeQueryModule("dl0", 0),
                      {.DeadlineNs = tpde::nowNs() + 30'000'000});
  EXPECT_FALSE(R->done());
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  Svc.resume();
  // The worker sheds the expired job at dequeue; poll for the counter so
  // we assert the shed path specifically (the waiter-side timeout in
  // wait() is a different counter).
  for (int I = 0; I < 2000 && Svc.stats().Shed == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Svc.stats().Shed, 1u);
  R->wait();
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::DeadlineExceeded);
  EXPECT_EQ(R->code(), nullptr);
  EXPECT_EQ(Svc.stats().CachedEntries, 0u) << "shed jobs are never compiled";
  // The fingerprint is not poisoned: a deadline-free resubmit compiles.
  auto R2 = Svc.submit(makeQueryModule("dl0", 0));
  R2->wait();
  EXPECT_TRUE(R2->ok());
  EXPECT_FALSE(R2->hit());
}

TEST(ServiceDeadline, WaiterTimesOutIndependentlyOfOwner) {
  uir::UirCompileService Svc({.NumWorkers = 1, .StartPaused = true});
  // Owner: no deadline, parked in the queue. Waiter: same content with a
  // short deadline — it must time out on its own while the owner is
  // still in flight, and the owner must stay unaffected.
  auto Owner = Svc.submit(makeQueryModule("wt0", 0));
  auto Waiter = Svc.submit(makeQueryModule("wt0", 0),
                           {.DeadlineNs = tpde::nowNs() + 25'000'000});
  EXPECT_EQ(Svc.stats().Coalesced, 1u) << "the second submit must coalesce";
  Waiter->wait();
  EXPECT_FALSE(Waiter->ok());
  EXPECT_EQ(Waiter->status().Err, CompileErr::DeadlineExceeded);
  EXPECT_EQ(Waiter->code(), nullptr);
  EXPECT_EQ(Svc.stats().DeadlineTimedOut, 1u);
  Svc.resume();
  Owner->wait();
  ASSERT_TRUE(Owner->ok()) << "the owner is unaffected by waiter timeouts";
  // First-wins: the publish did not overwrite the waiter's timeout, but
  // it did land in the cache.
  EXPECT_FALSE(Waiter->ok());
  auto Hit = Svc.submit(makeQueryModule("wt0", 0));
  Hit->wait();
  EXPECT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
}

// --- transient-failure retry (fault builds) --------------------------------

TEST(ServiceRetryTest, TransientMapFaultRetriedUntilSuccess) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  std::vector<u8> Solo = soloTirMappedText(makeTirJob(71, 5, "rt"));

  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1,
                                      .MaxRetries = 2,
                                      .RetryBackoffBaseNs = 100'000,
                                      .RetryBackoffCapNs = 1'000'000});
  // The jit-map site fires exactly once per arm: the first map attempt
  // fails transiently, the retry recompiles and maps cleanly.
  support::FaultInjector::arm(support::FaultSite::JitMap, 1);
  auto R = Svc.submit(makeTirJob(71, 5, "rt"));
  R->wait();
  support::FaultInjector::disarm(support::FaultSite::JitMap);
  ASSERT_TRUE(R->ok()) << R->status().Message;
  EXPECT_FALSE(R->hit());
  EXPECT_EQ(mappedText(*R->code()), Solo)
      << "retried code must be byte-identical to a clean compile";
  auto S = Svc.stats();
  EXPECT_EQ(S.Retried, 1u);
  EXPECT_EQ(S.Failed, 0u) << "the transient failure never reached a client";
}

TEST(ServiceRetryTest, ZeroRetryBudgetFailsStructured) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1, .MaxRetries = 0});
  support::FaultInjector::arm(support::FaultSite::JitMap, 1);
  auto R = Svc.submit(makeTirJob(72, 5, "rz"));
  R->wait();
  support::FaultInjector::disarm(support::FaultSite::JitMap);
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::FaultInjected);
  auto S = Svc.stats();
  EXPECT_EQ(S.Retried, 0u);
  EXPECT_EQ(S.Failed, 1u);
  // Not poisoned: the same module compiles once the fault is gone.
  auto R2 = Svc.submit(makeTirJob(72, 5, "rz"));
  R2->wait();
  EXPECT_TRUE(R2->ok()) << R2->status().Message;
}

TEST(ServiceRetryTest, RetrySchedulingFaultFailsCleanly) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1, .MaxRetries = 2});
  // First failure is transient and would retry — but the retry-scheduling
  // site itself fails, so the job must fail cleanly instead of hanging.
  support::FaultInjector::arm(support::FaultSite::JitMap, 1);
  support::FaultInjector::arm(support::FaultSite::ServiceRetry, 1);
  auto R = Svc.submit(makeTirJob(73, 5, "rs"));
  R->wait();
  support::FaultInjector::disarmAll();
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::FaultInjected);
  EXPECT_NE(R->status().Message.find("retry"), std::string::npos);
  EXPECT_EQ(Svc.stats().Retried, 0u);
  auto R2 = Svc.submit(makeTirJob(73, 5, "rs"));
  R2->wait();
  EXPECT_TRUE(R2->ok()) << R2->status().Message;
}

TEST(ServiceRetryTest, AdmissionFaultFailsCleanly) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  uir::UirCompileService Svc({.NumWorkers = 1});
  support::FaultInjector::arm(support::FaultSite::ServiceAdmit, 1);
  auto R = Svc.submit(makeQueryModule("af0", 0));
  support::FaultInjector::disarm(support::FaultSite::ServiceAdmit);
  ASSERT_TRUE(R->done()) << "admission failures complete synchronously";
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::FaultInjected);
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 0u) << "the failed admission never touched the cache";
  EXPECT_EQ(S.CachedEntries, 0u);
  auto R2 = Svc.submit(makeQueryModule("af0", 0));
  R2->wait();
  EXPECT_TRUE(R2->ok());
  EXPECT_FALSE(R2->hit());
}

// --- stuck-batch watchdog --------------------------------------------------

TEST(ServiceWatchdog, StuckWorkerFailedOverAndServiceRecovers) {
  std::atomic<int> Calls{0};
  std::atomic<bool> Release{false};
  service::ServiceOptions O;
  O.NumWorkers = 1;
  O.StartPaused = true;
  O.StuckBatchTimeoutNs = 50'000'000; // 50ms
  O.WatchdogPeriodNs = 5'000'000;     // 5ms
  O.TestHookPreBatch = [&] {
    // Hang the first batch after its claims are registered.
    if (Calls.fetch_add(1) == 0)
      while (!Release.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  uir::UirCompileService Svc(std::move(O));
  auto Stuck = Svc.submit(makeQueryModule("wd0", 0));
  auto Waiting = Svc.submit(makeQueryModule("wd0", 0)); // coalesced waiter
  Svc.resume();
  // The watchdog fails over the hung worker's claim: the submitter AND
  // its waiter complete with a structured error while the worker thread
  // is still stuck.
  Stuck->wait();
  Waiting->wait();
  EXPECT_FALSE(Stuck->ok());
  EXPECT_EQ(Stuck->status().Err, CompileErr::DeadlineExceeded);
  EXPECT_NE(Stuck->status().Message.find("watchdog"), std::string::npos);
  EXPECT_EQ(Waiting->status().Err, CompileErr::DeadlineExceeded);
  EXPECT_EQ(Svc.stats().StuckFailovers, 1u);
  // Release the worker: its late publish must be a harmless no-op, and
  // the service keeps serving (the fingerprint recompiles cleanly).
  Release.store(true);
  auto R2 = Svc.submit(makeQueryModule("wd0", 0));
  R2->wait();
  ASSERT_TRUE(R2->ok()) << R2->status().Message;
  EXPECT_EQ(Svc.stats().Failed, 2u) << "only the failed-over pair counted";
}

// --- liveness under overload + faults --------------------------------------

TEST(ServiceFaultSweep, FloodedServiceStaysLiveAcrossWorkerCounts) {
  // 2x-overload flood: far more arrivals than a small ring can hold, per
  // -tenant interleaved, with deadlines — under an armed service fault
  // site where fault builds allow. Every job must complete with code or
  // a *labelled* structured error; nothing may hang. This is the
  // acceptance drill for the overload layer, run at 1, 2, and 4 workers.
  std::vector<int> Sites = {-1}; // -1 = no fault armed
  if (support::faultInjectionEnabled()) {
    Sites.push_back(static_cast<int>(support::FaultSite::ServiceAdmit));
    Sites.push_back(static_cast<int>(support::FaultSite::ServiceRetry));
    Sites.push_back(static_cast<int>(support::FaultSite::JitMap));
  }
  for (unsigned Workers : {1u, 2u, 4u}) {
    for (int Site : Sites) {
      uir::UirCompileService Svc({.NumWorkers = Workers,
                                  .QueueCapacity = 8,
                                  .MaxBatchJobs = 4,
                                  .MaxRetries = 1,
                                  .RetryBackoffBaseNs = 100'000,
                                  .RetryBackoffCapNs = 1'000'000});
      if (Site >= 0)
        support::FaultInjector::arm(static_cast<support::FaultSite>(Site), 3);
      const u64 Deadline = tpde::nowNs() + 2'000'000'000; // generous 2s
      std::vector<service::ResultPtr> Rs;
      for (u32 I = 0; I < 80; ++I)
        Rs.push_back(Svc.trySubmit(
            makeQueryModule("fl" + std::to_string(Workers) + "_" +
                                std::to_string(Site) + "_" +
                                std::to_string(I),
                            I),
            {.Tenant = I % 4, .DeadlineNs = Deadline}));
      unsigned Served = 0;
      for (auto &R : Rs) {
        R->wait(); // deadline-bounded: liveness even if something wedged
        ASSERT_TRUE(R->done());
        if (R->ok()) {
          ++Served;
          continue;
        }
        CompileErr E = R->status().Err;
        EXPECT_TRUE(E == CompileErr::Overloaded ||
                    E == CompileErr::DeadlineExceeded ||
                    E == CompileErr::FaultInjected ||
                    E == CompileErr::JitMapFailed ||
                    E == CompileErr::OutOfMemory)
            << "unlabelled failure: " << support::compileErrName(E) << " ("
            << R->status().Message << ")";
        EXPECT_FALSE(R->status().Message.empty());
      }
      support::FaultInjector::disarmAll();
      EXPECT_GT(Served, 0u)
          << "workers=" << Workers << " site=" << Site
          << ": overload must shed, not starve";
    }
  }
}
