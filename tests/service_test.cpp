//===- tests/service_test.cpp - Compile service & code cache --------------===//
///
/// The serving-layer suite (docs/SERVICE.md):
///
///  * Cache correctness: a cache hit returns byte-identical mapped code
///    to a fresh compile — for the UIR and the TIR/x64 paths — and the
///    batched service compile itself matches a solo compile byte for
///    byte (the job-aligned sharding contract of
///    core::ParallelModuleCompiler::compileJobs).
///  * Fingerprints: sensitive to every content field, insensitive to the
///    adapter scratch slots compilation mutates and to debug names.
///  * Single-flight: concurrent producers of one fingerprint trigger
///    exactly one compile; everyone shares the published code.
///  * Eviction: the byte budget is enforced by epoch-LRU eviction, and
///    an evicted fingerprint recompiles correctly.
///  * Robustness: a malformed job is rejected at admission with a
///    structured diagnostic; an uncompilable job inside a batch fails
///    alone while its batch neighbors are served; the fault-injection
///    shard-compile site inside the service path recovers (fault builds).
///  * Support primitives: bounded MPMC queue semantics, latency
///    histogram quantiles.
///
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"
#include "support/Histogram.h"
#include "support/MpmcQueue.h"
#include "tpde_tir/Service.h"
#include "uir/Service.h"
#include "workloads/Generator.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace tpde;
using support::CompileErr;
using support::Fp128;

namespace {

// --- helpers ---------------------------------------------------------------

/// A single-query UIR module; \p Variant perturbs the plan so distinct
/// variants have distinct content (and fingerprints).
uir::UModule makeQueryModule(const std::string &Name, u32 Variant) {
  uir::QueryPlan P;
  P.Name = Name;
  P.Preds = {{1, uir::UOp::CmpLt, 200 + static_cast<i64>(Variant)},
             {2, uir::UOp::CmpNe, 77}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = static_cast<i64>(Variant);
  uir::UModule M;
  uir::compilePlan(M, P);
  return M;
}

uir::QueryPlan planOf(const std::string &Name, u32 Variant) {
  uir::QueryPlan P;
  P.Name = Name;
  P.Preds = {{1, uir::UOp::CmpLt, 200 + static_cast<i64>(Variant)},
             {2, uir::UOp::CmpNe, 77}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = static_cast<i64>(Variant);
  return P;
}

/// A generated TIR module with every function name prefixed so several
/// jobs can share a batch (calls reference functions by index, so
/// renaming is content-neutral for codegen).
tir::Module makeTirJob(u64 Seed, u32 NumFuncs, const std::string &Prefix) {
  tir::Module M;
  workloads::Profile P;
  P.Seed = Seed;
  P.NumFuncs = NumFuncs;
  P.SSAForm = true;
  P.CallPct = 12;
  workloads::genModule(M, P);
  for (tir::Function &F : M.Funcs)
    F.Name = Prefix + "_" + F.Name;
  return M;
}

/// Makes one function uncompilable (Op::None) but verifier-clean, as in
/// robustness_test.cpp.
void sabotageTir(tir::Module &M, u32 FuncIdx) {
  for (tir::Value &V : M.Funcs[FuncIdx].Values)
    if (V.Kind == tir::ValKind::Inst && V.Opcode == tir::Op::Add) {
      V.Opcode = tir::Op::None;
      return;
    }
  FAIL() << "no Add to sabotage in function " << FuncIdx;
}

std::vector<u8> mappedText(const service::CachedCode &C) {
  auto T = C.textBytes();
  return {T.begin(), T.end()};
}

/// Fresh solo compile + map of a UIR module; returns the mapped text.
std::vector<u8> soloUirMappedText(uir::UModule M) {
  asmx::Assembler Asm;
  EXPECT_TRUE(uir::compileTpdeUir(M, Asm));
  asmx::JITMapper JIT;
  EXPECT_TRUE(JIT.map(Asm));
  const u8 *Base = JIT.sectionBase(asmx::SecKind::Text);
  return {Base, Base + Asm.text().size()};
}

std::vector<u8> soloTirMappedText(tir::Module M) {
  asmx::Assembler Asm;
  EXPECT_TRUE(tpde_tir::compileModuleX64(M, Asm));
  asmx::JITMapper JIT;
  EXPECT_TRUE(JIT.map(Asm));
  const u8 *Base = JIT.sectionBase(asmx::SecKind::Text);
  return {Base, Base + Asm.text().size()};
}

using QueryFn = i64 (*)(const i64 *const *, i64);

} // namespace

// --- support primitives ----------------------------------------------------

TEST(MpmcQueue, FifoCloseAndDrainSemantics) {
  support::BoundedMpmcQueue<int> Q(4);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_TRUE(Q.tryPush(3));
  EXPECT_TRUE(Q.tryPush(4));
  EXPECT_FALSE(Q.tryPush(5)) << "queue is bounded";
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1) << "FIFO order";
  Q.close();
  EXPECT_FALSE(Q.push(6)) << "closed queue rejects producers";
  EXPECT_TRUE(Q.pop(V)) << "close drains remaining items";
  EXPECT_EQ(V, 2);
  EXPECT_TRUE(Q.pop(V));
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 4);
  EXPECT_FALSE(Q.pop(V)) << "closed and drained";
}

TEST(MpmcQueue, BlockingHandoffAcrossThreads) {
  support::BoundedMpmcQueue<int> Q(2);
  i64 Sum = 0;
  std::thread Consumer([&] {
    int V;
    while (Q.pop(V))
      Sum += V;
  });
  for (int I = 1; I <= 100; ++I)
    EXPECT_TRUE(Q.push(I));
  Q.close();
  Consumer.join();
  EXPECT_EQ(Sum, 5050);
}

TEST(LatencyHistogram, QuantilesAreConservativeUpperBounds) {
  support::LatencyHistogram H;
  for (u64 I = 1; I <= 1000; ++I)
    H.record(I * 1000); // 1us .. 1ms
  EXPECT_EQ(H.count(), 1000u);
  u64 P50 = H.quantileNs(0.50);
  u64 P99 = H.quantileNs(0.99);
  EXPECT_GE(P50, 500'000u) << "p50 must not under-report";
  EXPECT_LE(P50, 500'000u + 500'000u / 8) << "within one sub-bucket width";
  EXPECT_GE(P99, 990'000u);
  EXPECT_LE(P99, 990'000u + 990'000u / 8);
  EXPECT_LE(P50, P99);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.quantileNs(0.5), 0u);
}

// --- fingerprints ----------------------------------------------------------

TEST(Fingerprint, UirSensitiveToContentInsensitiveToScratch) {
  uir::UModule A = makeQueryModule("q", 1);
  uir::UModule B = makeQueryModule("q", 1);
  EXPECT_EQ(uir::fingerprintModule(A), uir::fingerprintModule(B))
      << "same content, same fingerprint";
  uir::UModule C = makeQueryModule("q", 2);
  EXPECT_NE(uir::fingerprintModule(A), uir::fingerprintModule(C))
      << "a changed constant must change the fingerprint";
  uir::UModule D = makeQueryModule("r", 1);
  EXPECT_NE(uir::fingerprintModule(A), uir::fingerprintModule(D))
      << "the query name is part of the content (it names the symbol)";

  // Compilation writes the adapter scratch slot (UBlock::Aux); the
  // fingerprint must not see it, or a compiled module would never hit.
  Fp128 Before = uir::fingerprintModule(A);
  asmx::Assembler Asm;
  ASSERT_TRUE(uir::compileTpdeUir(A, Asm));
  EXPECT_EQ(uir::fingerprintModule(A), Before)
      << "fingerprint must be stable across compilation";
}

TEST(Fingerprint, TirInsensitiveToDebugNamesAndScratch) {
  tir::Module A = makeTirJob(5, 4, "fp");
  Fp128 Before = tpde_tir::fingerprintModule(A);

  tir::Module B = makeTirJob(5, 4, "fp");
  B.Funcs[0].setValueName(2, "debug_name");
  B.Funcs[1].Blocks[0].Name = "entry_renamed";
  EXPECT_EQ(tpde_tir::fingerprintModule(B), Before)
      << "debug names are not content";

  asmx::Assembler Asm;
  ASSERT_TRUE(tpde_tir::compileModuleX64(A, Asm));
  EXPECT_EQ(tpde_tir::fingerprintModule(A), Before)
      << "fingerprint must be stable across compilation";

  tir::Module C = makeTirJob(6, 4, "fp");
  EXPECT_NE(tpde_tir::fingerprintModule(C), Before);
}

// --- cache correctness -----------------------------------------------------

TEST(ServiceCache, UirHitIsByteIdenticalToFreshCompile) {
  std::vector<u8> Solo = soloUirMappedText(makeQueryModule("svc_q0", 3));

  uir::UirCompileService Svc({.NumWorkers = 1});
  auto Miss = Svc.submit(makeQueryModule("svc_q0", 3));
  Miss->wait();
  ASSERT_TRUE(Miss->ok()) << Miss->status().Message;
  EXPECT_FALSE(Miss->hit());
  EXPECT_EQ(mappedText(*Miss->code()), Solo)
      << "service-compiled code must match a solo compile byte for byte";

  auto Hit = Svc.submit(makeQueryModule("svc_q0", 3));
  Hit->wait();
  ASSERT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
  EXPECT_EQ(Hit->code().get(), Miss->code().get())
      << "a hit shares the published mapping";
  EXPECT_EQ(mappedText(*Hit->code()), Solo);

  // The served code executes correctly.
  uir::Table T(6, 10'000, /*Seed=*/11);
  auto *Q = reinterpret_cast<QueryFn>(Hit->address("svc_q0"));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)),
            uir::evalPlan(planOf("svc_q0", 3), T));

  auto S = Svc.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.CachedEntries, 1u);
  EXPECT_GT(S.CachedBytes, 0u);
}

TEST(ServiceCache, TirX64HitIsByteIdenticalToFreshCompile) {
  std::vector<u8> Solo = soloTirMappedText(makeTirJob(21, 6, "jobA"));

  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1});
  auto Miss = Svc.submit(makeTirJob(21, 6, "jobA"));
  Miss->wait();
  ASSERT_TRUE(Miss->ok()) << Miss->status().Message;
  EXPECT_FALSE(Miss->hit());
  EXPECT_EQ(mappedText(*Miss->code()), Solo);

  auto Hit = Svc.submit(makeTirJob(21, 6, "jobA"));
  Hit->wait();
  ASSERT_TRUE(Hit->ok());
  EXPECT_TRUE(Hit->hit());
  EXPECT_EQ(Hit->code().get(), Miss->code().get());

  auto S = Svc.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
}

TEST(ServiceCache, BatchedJobsMatchSoloCompiles) {
  // Queue three distinct jobs against a paused worker so they are
  // guaranteed to be compiled as ONE batch, then check every job's
  // output against its solo compile — the job-aligned sharding contract.
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(31, 5, "ba"));
  std::vector<u8> SoloB = soloTirMappedText(makeTirJob(32, 5, "bb"));
  std::vector<u8> SoloC = soloTirMappedText(makeTirJob(33, 5, "bc"));

  tpde_tir::TirCompileServiceX64 Svc(
      {.NumWorkers = 1, .MaxBatchJobs = 8, .StartPaused = true});
  auto RA = Svc.submit(makeTirJob(31, 5, "ba"));
  auto RB = Svc.submit(makeTirJob(32, 5, "bb"));
  auto RC = Svc.submit(makeTirJob(33, 5, "bc"));
  Svc.resume();
  RA->wait();
  RB->wait();
  RC->wait();
  ASSERT_TRUE(RA->ok() && RB->ok() && RC->ok());
  EXPECT_EQ(mappedText(*RA->code()), SoloA);
  EXPECT_EQ(mappedText(*RB->code()), SoloB);
  EXPECT_EQ(mappedText(*RC->code()), SoloC);
}

TEST(ServiceCache, EvictionUnderByteBudget) {
  // Measure one entry's mapped footprint, then budget for ~3 entries.
  u64 EntryBytes;
  {
    uir::UModule M = makeQueryModule("ev_probe", 0);
    asmx::Assembler Asm;
    ASSERT_TRUE(uir::compileTpdeUir(M, Asm));
    asmx::JITMapper JIT;
    ASSERT_TRUE(JIT.map(Asm));
    EntryBytes = JIT.mappedSize();
    ASSERT_GT(EntryBytes, 0u);
  }
  const u64 Budget = EntryBytes * 3 + EntryBytes / 2;

  uir::UirCompileService Svc({.NumWorkers = 1, .CacheBudgetBytes = Budget});
  for (u32 I = 0; I < 6; ++I) {
    auto R = Svc.submit(makeQueryModule("ev" + std::to_string(I), I));
    R->wait();
    ASSERT_TRUE(R->ok()) << R->status().Message;
  }
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 6u);
  EXPECT_GT(S.Evictions, 0u) << "6 entries cannot fit a ~3-entry budget";
  EXPECT_LE(S.CachedBytes, Budget) << "budget must be enforced";

  // The least-recently-used fingerprint (ev0) was evicted: resubmitting
  // recompiles it — correctly.
  auto R0 = Svc.submit(makeQueryModule("ev0", 0));
  R0->wait();
  ASSERT_TRUE(R0->ok());
  EXPECT_FALSE(R0->hit()) << "evicted entries miss again";
  EXPECT_EQ(Svc.stats().Misses, 7u);
  uir::Table T(6, 5'000, /*Seed=*/3);
  auto *Q = reinterpret_cast<QueryFn>(R0->address("ev0"));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)),
            uir::evalPlan(planOf("ev0", 0), T));
}

TEST(ServiceCache, SingleFlightUnderConcurrentProducers) {
  // 8 producers submit the same content while the worker is parked: one
  // becomes the owner, everyone else coalesces onto the in-flight entry.
  uir::UirCompileService Svc({.NumWorkers = 1, .StartPaused = true});
  constexpr unsigned N = 8;
  std::vector<service::ResultPtr> Results(N);
  {
    std::vector<std::thread> Producers;
    for (unsigned I = 0; I < N; ++I)
      Producers.emplace_back([&, I] {
        Results[I] = Svc.submit(makeQueryModule("sf_q", 9));
      });
    for (auto &P : Producers)
      P.join();
  }
  Svc.resume();
  for (auto &R : Results) {
    R->wait();
    ASSERT_TRUE(R->ok()) << R->status().Message;
  }
  auto S = Svc.stats();
  EXPECT_EQ(S.Misses, 1u) << "the same fingerprint must compile exactly once";
  EXPECT_EQ(S.Coalesced, N - 1);
  EXPECT_EQ(S.Hits, 0u);
  for (auto &R : Results)
    EXPECT_EQ(R->code().get(), Results[0]->code().get())
        << "all producers share the single published mapping";
}

// --- robustness ------------------------------------------------------------

TEST(ServiceRobustness, MalformedJobRejectedAtAdmission) {
  uir::UirCompileService Svc({.NumWorkers = 1});
  // Duplicate query names: structurally fine, rejected by uir::verifyModule.
  uir::UModule Bad = makeQueryModule("dup", 1);
  uir::UModule Twin = makeQueryModule("dup", 1);
  Bad.Funcs.push_back(Twin.Funcs[0]);
  auto R = Svc.submit(std::move(Bad));
  EXPECT_TRUE(R->done()) << "verify rejection completes synchronously";
  EXPECT_FALSE(R->ok());
  EXPECT_EQ(R->status().Err, CompileErr::VerifyFailed);
  auto S = Svc.stats();
  EXPECT_EQ(S.VerifyRejected, 1u);
  EXPECT_EQ(S.Misses, 0u) << "rejected jobs never touch the cache";
  EXPECT_EQ(S.CachedEntries, 0u);

  // The pool is not poisoned: a good job still compiles.
  auto Good = Svc.submit(makeQueryModule("after_bad", 2));
  Good->wait();
  EXPECT_TRUE(Good->ok());
}

TEST(ServiceRobustness, UncompilableJobFailsAloneBatchNeighborsServed) {
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(41, 5, "ga"));
  std::vector<u8> SoloC = soloTirMappedText(makeTirJob(43, 5, "gc"));

  // Verify off: the sabotaged module is verifier-clean (Op::None only
  // fails in the instruction compiler) — this exercises the driver's
  // graceful-degradation path inside a service batch.
  tpde_tir::TirCompileServiceX64 Svc({.NumWorkers = 1,
                                      .MaxBatchJobs = 8,
                                      .Verify = false,
                                      .StartPaused = true});
  tir::Module BadJob = makeTirJob(42, 5, "gbad");
  sabotageTir(BadJob, 2);

  auto RA = Svc.submit(makeTirJob(41, 5, "ga"));
  auto RB = Svc.submit(std::move(BadJob));
  auto RC = Svc.submit(makeTirJob(43, 5, "gc"));
  Svc.resume();
  RA->wait();
  RB->wait();
  RC->wait();

  ASSERT_TRUE(RA->ok()) << RA->status().Message;
  ASSERT_TRUE(RC->ok()) << RC->status().Message;
  EXPECT_EQ(mappedText(*RA->code()), SoloA)
      << "a failing batch neighbor must not perturb a good job's bytes";
  EXPECT_EQ(mappedText(*RC->code()), SoloC);

  EXPECT_FALSE(RB->ok());
  EXPECT_EQ(RB->status().Err, CompileErr::UnsupportedInst);
  auto S = Svc.stats();
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.CachedEntries, 2u) << "the failed fingerprint is never cached";

  // Failure is not sticky: the failed fingerprint can be resubmitted
  // (here: the repaired module compiles under a new fingerprint, and the
  // service keeps serving).
  auto RFixed = Svc.submit(makeTirJob(42, 5, "gbad"));
  RFixed->wait();
  EXPECT_TRUE(RFixed->ok());
}

TEST(ServiceRobustness, ShardFaultMidBatchRecoversAllJobs) {
  if (!support::faultInjectionEnabled())
    GTEST_SKIP() << "needs -DTPDE_FAULT_INJECTION=ON";
  std::vector<u8> SoloA = soloTirMappedText(makeTirJob(51, 5, "fa"));
  std::vector<u8> SoloB = soloTirMappedText(makeTirJob(52, 5, "fb"));

  tpde_tir::TirCompileServiceX64 Svc(
      {.NumWorkers = 1, .MaxBatchJobs = 8, .StartPaused = true});
  auto RA = Svc.submit(makeTirJob(51, 5, "fa"));
  auto RB = Svc.submit(makeTirJob(52, 5, "fb"));
  support::FaultInjector::arm(support::FaultSite::ShardCompile, 1);
  Svc.resume();
  RA->wait();
  RB->wait();
  support::FaultInjector::disarm(support::FaultSite::ShardCompile);

  // The injected shard failure is absorbed by the driver's recovery pass
  // (function-by-function retry): both jobs are served, byte-identical.
  ASSERT_TRUE(RA->ok()) << RA->status().Message;
  ASSERT_TRUE(RB->ok()) << RB->status().Message;
  EXPECT_EQ(mappedText(*RA->code()), SoloA);
  EXPECT_EQ(mappedText(*RB->code()), SoloB);
}
