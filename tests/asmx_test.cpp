//===- tests/asmx_test.cpp - Assembler/ELF/JIT substrate tests -----------===//

#include "asmx/Assembler.h"
#include "asmx/ElfWriter.h"
#include "asmx/JITMapper.h"

#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::asmx;

TEST(Section, AppendAndPatch) {
  Section S;
  S.appendLE<u32>(0xdeadbeef);
  S.appendByte(0x42);
  EXPECT_EQ(S.size(), 5u);
  EXPECT_EQ(S.readLE<u32>(0), 0xdeadbeefu);
  S.patchLE<u16>(1, 0x1234);
  EXPECT_EQ(S.Data[1], 0x34);
  EXPECT_EQ(S.Data[2], 0x12);
  S.alignToBoundary(8);
  EXPECT_EQ(S.size(), 8u);
}

TEST(Assembler, SymbolCreationAndLookup) {
  Assembler A;
  SymRef F = A.createSymbol("foo", Linkage::External, /*IsFunc=*/true);
  SymRef G = A.getOrCreateSymbol("bar");
  EXPECT_TRUE(F.isValid());
  EXPECT_TRUE(G.isValid());
  EXPECT_EQ(A.findSymbol("foo").Idx, F.Idx);
  EXPECT_EQ(A.getOrCreateSymbol("foo").Idx, F.Idx);
  EXPECT_FALSE(A.findSymbol("baz").isValid());
  EXPECT_FALSE(A.symbol(F).Defined);
  A.defineSymbol(F, SecKind::Text, 16, 32);
  EXPECT_TRUE(A.symbol(F).Defined);
  EXPECT_EQ(A.symbol(F).Off, 16u);
  EXPECT_EQ(A.symbol(F).Size, 32u);
}

TEST(Assembler, DuplicateRegistrationMergesIntoOneSymbol) {
  Assembler A;
  SymRef S1 = A.createSymbol("f", Linkage::External, /*IsFunc=*/false);
  // Re-registering the same name returns the same symbol (upgraded), it
  // does not silently create a shadowed second entry.
  SymRef S2 = A.createSymbol("f", Linkage::Internal, /*IsFunc=*/true);
  EXPECT_EQ(S1.Idx, S2.Idx);
  EXPECT_EQ(A.symbols().size(), 1u);
  EXPECT_TRUE(A.symbol(S1).IsFunc);
  EXPECT_EQ(A.symbol(S1).Link, Linkage::Internal);
}

TEST(Assembler, DuplicateStrongDefinitionIsAnError) {
  Assembler A;
  SymRef S = A.createSymbol("dup", Linkage::External, /*IsFunc=*/true);
  A.defineSymbol(S, SecKind::Text, 0, 4);
  EXPECT_FALSE(A.hasError());
  A.defineSymbol(S, SecKind::Text, 8, 4);
  EXPECT_TRUE(A.hasError());
  EXPECT_NE(A.errorMessage().find("dup"), std::string_view::npos);
  // The first definition wins; the conflicting one is ignored.
  EXPECT_EQ(A.symbol(S).Off, 0u);
}

TEST(Assembler, ReRegistrationNeverRelaxesDefinedOrLocalLinkage) {
  Assembler A;
  SymRef S = A.createSymbol("g", Linkage::Internal, /*IsFunc=*/false);
  A.defineSymbol(S, SecKind::Data, 0, 8);
  // A later Weak registration must not downgrade the defined local
  // symbol (would change ELF binding and mask duplicate-def errors).
  SymRef S2 = A.createSymbol("g", Linkage::Weak, /*IsFunc=*/false);
  EXPECT_EQ(S.Idx, S2.Idx);
  EXPECT_EQ(A.symbol(S).Link, Linkage::Internal);
  A.defineSymbol(S, SecKind::Data, 16, 8);
  EXPECT_TRUE(A.hasError()) << "second strong definition must error";
}

TEST(Assembler, WeakSymbolFirstDefinitionWins) {
  Assembler A;
  SymRef S = A.createSymbol("w", Linkage::Weak, /*IsFunc=*/false);
  A.defineSymbol(S, SecKind::Data, 0, 8);
  A.defineSymbol(S, SecKind::Data, 16, 8);
  EXPECT_FALSE(A.hasError()) << "weak redefinition is not an error";
  EXPECT_EQ(A.symbol(S).Off, 0u);
}

TEST(Assembler, ResetRetainsInternedNames) {
  Assembler A;
  SymRef S = A.createSymbol("persistent", Linkage::External, true);
  std::string_view Name = A.symbol(S).Name;
  A.reset();
  EXPECT_FALSE(A.findSymbol("persistent").isValid());
  SymRef S2 = A.createSymbol("persistent", Linkage::External, true);
  // The name view stays valid across reset (string pool persists).
  EXPECT_EQ(Name, "persistent");
  EXPECT_EQ(A.symbol(S2).Name.data(), Name.data());
}

TEST(Assembler, LabelForwardFixupRel32) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  // Pretend a jmp rel32: opcode byte then 4-byte displacement.
  T.appendByte(0xE9);
  u64 FixOff = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, FixOff);
  T.appendByte(0x90); // some padding instruction
  A.bindLabel(L);
  EXPECT_EQ(A.labelOffset(L), 6u);
  // displacement = target(6) - end of field(5) = 1
  EXPECT_EQ(T.readLE<i32>(FixOff), 1);
}

TEST(Assembler, LabelBackwardFixup) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  A.bindLabel(L); // bound at offset 0
  T.appendByte(0xE9);
  u64 FixOff = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, FixOff);
  EXPECT_EQ(T.readLE<i32>(FixOff), -5);
}

TEST(Assembler, MultipleFixupsOneLabel) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  u64 Offs[3];
  for (int I = 0; I < 3; ++I) {
    T.appendByte(0xE9);
    Offs[I] = T.size();
    T.appendLE<i32>(0);
    A.addFixup(L, FixupKind::Rel32, Offs[I]);
  }
  A.bindLabel(L);
  for (int I = 0; I < 3; ++I) {
    i64 Expect = static_cast<i64>(T.size()) - static_cast<i64>(Offs[I] + 4);
    EXPECT_EQ(T.readLE<i32>(Offs[I]), Expect);
  }
}

TEST(Assembler, A64Branch26Fixup) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  u64 Off = T.size();
  T.appendLE<u32>(0x14000000); // b #0
  A.addFixup(L, FixupKind::A64Branch26, Off);
  T.appendLE<u32>(0xd503201f); // nop
  A.bindLabel(L);
  // Branch distance = 8 bytes = 2 words.
  EXPECT_EQ(T.readLE<u32>(Off), 0x14000002u);
}

TEST(ElfWriter, HeaderAndSymbols) {
  Assembler A;
  SymRef F = A.createSymbol("myfunc", Linkage::External, true);
  A.text().appendByte(0xC3);
  A.defineSymbol(F, SecKind::Text, 0, 1);
  SymRef L = A.createSymbol("local", Linkage::Internal, false);
  A.section(SecKind::Data).appendLE<u64>(123);
  A.defineSymbol(L, SecKind::Data, 0, 8);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, F, 0);

  std::vector<u8> Obj = writeElfObject(A, ElfMachine::X86_64);
  ASSERT_GE(Obj.size(), 64u);
  EXPECT_EQ(Obj[0], 0x7f);
  EXPECT_EQ(Obj[1], 'E');
  EXPECT_EQ(Obj[2], 'L');
  EXPECT_EQ(Obj[3], 'F');
  EXPECT_EQ(Obj[4], 2); // 64-bit
  EXPECT_EQ(Obj[5], 1); // little endian
  // e_type == ET_REL, e_machine == EM_X86_64
  EXPECT_EQ(Obj[16], 1);
  EXPECT_EQ(Obj[18], 62);
}

TEST(ElfWriter, AArch64Machine) {
  Assembler A;
  std::vector<u8> Obj = writeElfObject(A, ElfMachine::AArch64);
  EXPECT_EQ(Obj[18], 183);
}

TEST(JITMapper, MapsDataAndResolvesAbs64) {
  Assembler A;
  // data: one pointer-sized slot relocated against "target".
  SymRef Target = A.createSymbol("target", Linkage::External, false);
  A.section(SecKind::ROData).appendLE<u64>(77); // rodata content
  SymRef RoSym = A.createSymbol("ro", Linkage::Internal, false);
  A.defineSymbol(RoSym, SecKind::ROData, 0, 8);
  A.section(SecKind::Data).appendLE<u64>(0);
  SymRef Ptr = A.createSymbol("ptr", Linkage::External, false);
  A.defineSymbol(Ptr, SecKind::Data, 0, 8);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, Target, 16);

  static int External;
  JITMapper JIT;
  ASSERT_TRUE(JIT.map(A, [](std::string_view Name) -> void * {
    return Name == "target" ? &External : nullptr;
  }));
  u64 Stored;
  memcpy(&Stored, JIT.address("ptr"), 8);
  EXPECT_EQ(Stored, reinterpret_cast<u64>(&External) + 16);
  u64 Ro;
  memcpy(&Ro, JIT.address("ro"), 8);
  EXPECT_EQ(Ro, 77u);
}

TEST(JITMapper, UnresolvedSymbolFails) {
  Assembler A;
  SymRef Missing = A.createSymbol("missing", Linkage::External, false);
  A.section(SecKind::Data).appendLE<u64>(0);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, Missing, 0);
  JITMapper JIT;
  EXPECT_FALSE(JIT.map(A, nullptr));
}

TEST(JITMapper, BssIsZeroed) {
  Assembler A;
  A.section(SecKind::BSS).BssSize = 64;
  SymRef B = A.createSymbol("bss_var", Linkage::External, false);
  A.defineSymbol(B, SecKind::BSS, 0, 64);
  JITMapper JIT;
  ASSERT_TRUE(JIT.map(A));
  u8 *P = static_cast<u8 *>(JIT.address("bss_var"));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(P[I], 0);
}
