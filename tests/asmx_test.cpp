//===- tests/asmx_test.cpp - Assembler/ELF/JIT substrate tests -----------===//

#include "asmx/Assembler.h"
#include "asmx/ElfWriter.h"
#include "asmx/JITMapper.h"
#include "support/AllocCounter.h"

#include <gtest/gtest.h>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using namespace tpde::asmx;

TEST(Section, AppendAndPatch) {
  Section S;
  S.appendLE<u32>(0xdeadbeef);
  S.appendByte(0x42);
  EXPECT_EQ(S.size(), 5u);
  EXPECT_EQ(S.readLE<u32>(0), 0xdeadbeefu);
  S.patchLE<u16>(1, 0x1234);
  EXPECT_EQ(S.Data[1], 0x34);
  EXPECT_EQ(S.Data[2], 0x12);
  S.alignToBoundary(8);
  EXPECT_EQ(S.size(), 8u);
}

TEST(Assembler, SymbolCreationAndLookup) {
  Assembler A;
  SymRef F = A.createSymbol("foo", Linkage::External, /*IsFunc=*/true);
  SymRef G = A.getOrCreateSymbol("bar");
  EXPECT_TRUE(F.isValid());
  EXPECT_TRUE(G.isValid());
  EXPECT_EQ(A.findSymbol("foo").Idx, F.Idx);
  EXPECT_EQ(A.getOrCreateSymbol("foo").Idx, F.Idx);
  EXPECT_FALSE(A.findSymbol("baz").isValid());
  EXPECT_FALSE(A.symbol(F).Defined);
  A.defineSymbol(F, SecKind::Text, 16, 32);
  EXPECT_TRUE(A.symbol(F).Defined);
  EXPECT_EQ(A.symbol(F).Off, 16u);
  EXPECT_EQ(A.symbol(F).Size, 32u);
}

TEST(Assembler, DuplicateRegistrationMergesIntoOneSymbol) {
  Assembler A;
  SymRef S1 = A.createSymbol("f", Linkage::External, /*IsFunc=*/false);
  // Re-registering the same name returns the same symbol (upgraded), it
  // does not silently create a shadowed second entry.
  SymRef S2 = A.createSymbol("f", Linkage::Internal, /*IsFunc=*/true);
  EXPECT_EQ(S1.Idx, S2.Idx);
  EXPECT_EQ(A.symbols().size(), 1u);
  EXPECT_TRUE(A.symbol(S1).IsFunc);
  EXPECT_EQ(A.symbol(S1).Link, Linkage::Internal);
}

TEST(Assembler, DuplicateStrongDefinitionIsAnError) {
  Assembler A;
  SymRef S = A.createSymbol("dup", Linkage::External, /*IsFunc=*/true);
  A.defineSymbol(S, SecKind::Text, 0, 4);
  EXPECT_FALSE(A.hasError());
  A.defineSymbol(S, SecKind::Text, 8, 4);
  EXPECT_TRUE(A.hasError());
  EXPECT_NE(A.errorMessage().find("dup"), std::string_view::npos);
  // The first definition wins; the conflicting one is ignored.
  EXPECT_EQ(A.symbol(S).Off, 0u);
}

TEST(Assembler, ReRegistrationNeverRelaxesDefinedOrLocalLinkage) {
  Assembler A;
  SymRef S = A.createSymbol("g", Linkage::Internal, /*IsFunc=*/false);
  A.defineSymbol(S, SecKind::Data, 0, 8);
  // A later Weak registration must not downgrade the defined local
  // symbol (would change ELF binding and mask duplicate-def errors).
  SymRef S2 = A.createSymbol("g", Linkage::Weak, /*IsFunc=*/false);
  EXPECT_EQ(S.Idx, S2.Idx);
  EXPECT_EQ(A.symbol(S).Link, Linkage::Internal);
  A.defineSymbol(S, SecKind::Data, 16, 8);
  EXPECT_TRUE(A.hasError()) << "second strong definition must error";
}

TEST(Assembler, WeakSymbolFirstDefinitionWins) {
  Assembler A;
  SymRef S = A.createSymbol("w", Linkage::Weak, /*IsFunc=*/false);
  A.defineSymbol(S, SecKind::Data, 0, 8);
  A.defineSymbol(S, SecKind::Data, 16, 8);
  EXPECT_FALSE(A.hasError()) << "weak redefinition is not an error";
  EXPECT_EQ(A.symbol(S).Off, 0u);
}

TEST(Assembler, ResetRetainsInternedNames) {
  Assembler A;
  SymRef S = A.createSymbol("persistent", Linkage::External, true);
  std::string_view Name = A.symbol(S).Name;
  A.reset();
  EXPECT_FALSE(A.findSymbol("persistent").isValid());
  SymRef S2 = A.createSymbol("persistent", Linkage::External, true);
  // The name view stays valid across reset (string pool persists).
  EXPECT_EQ(Name, "persistent");
  EXPECT_EQ(A.symbol(S2).Name.data(), Name.data());
}

TEST(Assembler, LabelForwardFixupRel32) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  // Pretend a jmp rel32: opcode byte then 4-byte displacement.
  T.appendByte(0xE9);
  u64 FixOff = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, FixOff);
  T.appendByte(0x90); // some padding instruction
  A.bindLabel(L);
  EXPECT_EQ(A.labelOffset(L), 6u);
  // displacement = target(6) - end of field(5) = 1
  EXPECT_EQ(T.readLE<i32>(FixOff), 1);
}

TEST(Assembler, LabelBackwardFixup) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  A.bindLabel(L); // bound at offset 0
  T.appendByte(0xE9);
  u64 FixOff = T.size();
  T.appendLE<i32>(0);
  A.addFixup(L, FixupKind::Rel32, FixOff);
  EXPECT_EQ(T.readLE<i32>(FixOff), -5);
}

TEST(Assembler, MultipleFixupsOneLabel) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  u64 Offs[3];
  for (int I = 0; I < 3; ++I) {
    T.appendByte(0xE9);
    Offs[I] = T.size();
    T.appendLE<i32>(0);
    A.addFixup(L, FixupKind::Rel32, Offs[I]);
  }
  A.bindLabel(L);
  for (int I = 0; I < 3; ++I) {
    i64 Expect = static_cast<i64>(T.size()) - static_cast<i64>(Offs[I] + 4);
    EXPECT_EQ(T.readLE<i32>(Offs[I]), Expect);
  }
}

TEST(Assembler, A64Branch26Fixup) {
  Assembler A;
  Section &T = A.text();
  Label L = A.makeLabel();
  u64 Off = T.size();
  T.appendLE<u32>(0x14000000); // b #0
  A.addFixup(L, FixupKind::A64Branch26, Off);
  T.appendLE<u32>(0xd503201f); // nop
  A.bindLabel(L);
  // Branch distance = 8 bytes = 2 words.
  EXPECT_EQ(T.readLE<u32>(Off), 0x14000002u);
}

#ifdef NDEBUG
/// An out-of-bounds fixup offset asserts in debug builds; release builds
/// must take the checked error path (first-error-wins on the assembler)
/// instead of patching out of bounds — and reset() must clear it.
TEST(Assembler, OutOfBoundsFixupPatchIsACheckedError) {
  Assembler A;
  Section &T = A.text();
  T.appendByte(0x90);
  Label L = A.makeLabel();
  A.bindLabel(L);
  A.addFixup(L, FixupKind::Rel32, /*Off=*/64); // far past the 1-byte text
  EXPECT_EQ(T.size(), 1u) << "OOB patch wrote into the text section";
  ASSERT_TRUE(A.hasError());
  EXPECT_EQ(A.errorCode(), support::CompileErr::AssemblerError);
  EXPECT_NE(A.errorMessage().find("out of bounds"), std::string_view::npos)
      << A.errorMessage();
  A.reset();
  EXPECT_FALSE(A.hasError());
}
#endif // NDEBUG

TEST(ElfWriter, HeaderAndSymbols) {
  Assembler A;
  SymRef F = A.createSymbol("myfunc", Linkage::External, true);
  A.text().appendByte(0xC3);
  A.defineSymbol(F, SecKind::Text, 0, 1);
  SymRef L = A.createSymbol("local", Linkage::Internal, false);
  A.section(SecKind::Data).appendLE<u64>(123);
  A.defineSymbol(L, SecKind::Data, 0, 8);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, F, 0);

  std::vector<u8> Obj = writeElfObject(A, ElfMachine::X86_64);
  ASSERT_GE(Obj.size(), 64u);
  EXPECT_EQ(Obj[0], 0x7f);
  EXPECT_EQ(Obj[1], 'E');
  EXPECT_EQ(Obj[2], 'L');
  EXPECT_EQ(Obj[3], 'F');
  EXPECT_EQ(Obj[4], 2); // 64-bit
  EXPECT_EQ(Obj[5], 1); // little endian
  // e_type == ET_REL, e_machine == EM_X86_64
  EXPECT_EQ(Obj[16], 1);
  EXPECT_EQ(Obj[18], 62);
}

TEST(ElfWriter, AArch64Machine) {
  Assembler A;
  std::vector<u8> Obj = writeElfObject(A, ElfMachine::AArch64);
  EXPECT_EQ(Obj[18], 183);
}

TEST(JITMapper, MapsDataAndResolvesAbs64) {
  Assembler A;
  // data: one pointer-sized slot relocated against "target".
  SymRef Target = A.createSymbol("target", Linkage::External, false);
  A.section(SecKind::ROData).appendLE<u64>(77); // rodata content
  SymRef RoSym = A.createSymbol("ro", Linkage::Internal, false);
  A.defineSymbol(RoSym, SecKind::ROData, 0, 8);
  A.section(SecKind::Data).appendLE<u64>(0);
  SymRef Ptr = A.createSymbol("ptr", Linkage::External, false);
  A.defineSymbol(Ptr, SecKind::Data, 0, 8);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, Target, 16);

  static int External;
  JITMapper JIT;
  ASSERT_TRUE(JIT.map(A, [](std::string_view Name) -> void * {
    return Name == "target" ? &External : nullptr;
  }));
  u64 Stored;
  memcpy(&Stored, JIT.address("ptr"), 8);
  EXPECT_EQ(Stored, reinterpret_cast<u64>(&External) + 16);
  u64 Ro;
  memcpy(&Ro, JIT.address("ro"), 8);
  EXPECT_EQ(Ro, 77u);
}

TEST(JITMapper, UnresolvedSymbolFails) {
  Assembler A;
  SymRef Missing = A.createSymbol("missing", Linkage::External, false);
  A.section(SecKind::Data).appendLE<u64>(0);
  A.addReloc(SecKind::Data, 0, RelocKind::Abs64, Missing, 0);
  JITMapper JIT;
  EXPECT_FALSE(JIT.map(A, nullptr));
}

TEST(JITMapper, BssIsZeroed) {
  Assembler A;
  A.section(SecKind::BSS).BssSize = 64;
  SymRef B = A.createSymbol("bss_var", Linkage::External, false);
  A.defineSymbol(B, SecKind::BSS, 0, 64);
  JITMapper JIT;
  ASSERT_TRUE(JIT.map(A));
  u8 *P = static_cast<u8 *>(JIT.address("bss_var"));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(P[I], 0);
}

// --- Merging (parallel shard fragments) ------------------------------------

TEST(Merge, SectionsConcatenateWithAlignmentAndRebasedOffsets) {
  Assembler Dst, Src;
  // Destination: 5 bytes of text (unaligned end), a defined symbol.
  for (int I = 0; I < 5; ++I)
    Dst.section(SecKind::Text).appendByte(0x90);
  SymRef F = Dst.createSymbol("f", Linkage::External, true);
  Dst.defineSymbol(F, SecKind::Text, 0, 5);
  // Source: 4 text bytes starting at its offset 0, plus a reloc at 0.
  Src.section(SecKind::Text).appendLE<u32>(0x11223344);
  SymRef G = Src.createSymbol("g", Linkage::External, true);
  Src.defineSymbol(G, SecKind::Text, 0, 4);
  Src.addReloc(SecKind::Text, 0, RelocKind::PC32, G, -4);

  Dst.mergeFrom(Src);
  // Source text lands 16-aligned (text alignment), so at offset 16.
  EXPECT_EQ(Dst.section(SecKind::Text).size(), 20u);
  EXPECT_EQ(Dst.section(SecKind::Text).readLE<u32>(16), 0x11223344u);
  SymRef MG = Dst.findSymbol("g");
  ASSERT_TRUE(MG.isValid());
  EXPECT_TRUE(Dst.symbol(MG).Defined);
  EXPECT_EQ(Dst.symbol(MG).Off, 16u);
  ASSERT_EQ(Dst.relocs().size(), 1u);
  EXPECT_EQ(Dst.relocs()[0].Off, 16u);
  EXPECT_EQ(Dst.relocs()[0].Sym.Idx, MG.Idx);
}

TEST(Merge, UndefinedReferenceBindsToDefinitionAcrossFragments) {
  // Fragment A calls "callee" (undefined there); fragment B defines it.
  Assembler Out, FragA, FragB;
  FragA.section(SecKind::Text).appendLE<u32>(0);
  SymRef CalleeA = FragA.createSymbol("callee", Linkage::External, true);
  FragA.addReloc(SecKind::Text, 0, RelocKind::PC32, CalleeA, -4);

  FragB.section(SecKind::Text).appendLE<u32>(0xC3C3C3C3);
  SymRef CalleeB = FragB.createSymbol("callee", Linkage::Internal, true);
  FragB.defineSymbol(CalleeB, SecKind::Text, 0, 4);

  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  SymRef C = Out.findSymbol("callee");
  ASSERT_TRUE(C.isValid());
  EXPECT_TRUE(Out.symbol(C).Defined);
  // The declaration adopted the definition's stronger linkage.
  EXPECT_EQ(Out.symbol(C).Link, Linkage::Internal);
  EXPECT_EQ(Out.symbol(C).Off, 16u); // B's text is 16-aligned after A's
  ASSERT_EQ(Out.relocs().size(), 1u);
  EXPECT_EQ(Out.relocs()[0].Sym.Idx, C.Idx);
}

TEST(Merge, DuplicateStrongDefinitionAcrossFragmentsIsAnError) {
  Assembler Out, FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::Text).appendByte(0xC3);
    SymRef S = Frag->createSymbol("twice", Linkage::External, true);
    Frag->defineSymbol(S, SecKind::Text, 0, 1);
  }
  Out.mergeFrom(FragA);
  EXPECT_FALSE(Out.hasError());
  Out.mergeFrom(FragB);
  EXPECT_TRUE(Out.hasError());
  EXPECT_NE(Out.errorMessage().find("twice"), std::string_view::npos);
}

TEST(Merge, DuplicateStrongDefinitionAfterDroppedDeclarationStillDiagnosed) {
  // The shape of the UIR parallel range path (External linkage, every
  // function a definition): the module-level globals fragment declares
  // the query (undefined, unreferenced — the merge drops that record),
  // then two shard fragments each *define* the same strong name.
  // Dropping the declaration must not launder the duplicate — the second
  // definition is still a module error — and a later fragment's
  // reference binds to the first definition.
  Assembler Out, Globals, FragA, FragB, FragC;
  Globals.createSymbol("q_dup", Linkage::External, true); // declaration only
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::Text).appendByte(0xC3);
    SymRef S = Frag->createSymbol("q_dup", Linkage::External, true);
    Frag->defineSymbol(S, SecKind::Text, 0, 1);
  }
  FragC.section(SecKind::Text).appendLE<u32>(0);
  SymRef Ref = FragC.createSymbol("q_dup", Linkage::External, true);
  FragC.addReloc(SecKind::Text, 0, RelocKind::PC32, Ref, -4);

  Out.mergeFrom(Globals);
  EXPECT_FALSE(Out.findSymbol("q_dup").isValid())
      << "unreferenced declaration should have been dropped";
  Out.mergeFrom(FragA);
  EXPECT_FALSE(Out.hasError());
  Out.mergeFrom(FragB);
  EXPECT_TRUE(Out.hasError());
  EXPECT_NE(Out.errorMessage().find("q_dup"), std::string_view::npos);
  Out.mergeFrom(FragC);
  SymRef S = Out.findSymbol("q_dup");
  ASSERT_TRUE(S.isValid());
  EXPECT_TRUE(Out.symbol(S).Defined);
  EXPECT_EQ(Out.symbol(S).Off, 0u)
      << "references must bind to the first definition";
  ASSERT_EQ(Out.relocs().size(), 1u);
  EXPECT_EQ(Out.relocs()[0].Sym.Idx, S.Idx);
}

TEST(Merge, WeakKeepsFirstDefinitionInMergeOrder) {
  Assembler Out, FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::Text).appendByte(0xC3);
    SymRef S = Frag->createSymbol("weak_fn", Linkage::Weak, true);
    Frag->defineSymbol(S, SecKind::Text, 0, 1);
  }
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_FALSE(Out.hasError());
  SymRef S = Out.findSymbol("weak_fn");
  EXPECT_EQ(Out.symbol(S).Off, 0u) << "first (fragment A) definition wins";
}

TEST(Merge, RodataPoolEntriesDeduplicateAcrossFragments) {
  // Two fragments that each materialized the same FP constant: the merged
  // module holds the bytes once and both relocations bind to that entry —
  // the pool matches what a serial whole-module compile would emit.
  Assembler Out, FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::ROData).appendLE<u64>(0x3FF0000000000000ull);
    SymRef S = Frag->createSymbol("", Linkage::Internal, false);
    Frag->defineSymbol(S, SecKind::ROData, 0, 8);
    Frag->section(SecKind::Text).appendLE<u32>(0);
    Frag->addReloc(SecKind::Text, 0, RelocKind::PC32, S, -4);
  }
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_FALSE(Out.hasError());
  ASSERT_EQ(Out.symbols().size(), 1u);
  ASSERT_EQ(Out.relocs().size(), 2u);
  EXPECT_EQ(Out.relocs()[0].Sym.Idx, Out.relocs()[1].Sym.Idx);
  EXPECT_EQ(Out.symbol(Out.relocs()[0].Sym).Off, 0u);
  EXPECT_EQ(Out.section(SecKind::ROData).size(), 8u);
}

TEST(Merge, RodataPoolKeepsDistinctEntries) {
  // Distinct constants stay distinct, appended at their own (entry-size)
  // alignment rather than the 16-byte wholesale-section alignment.
  Assembler Out, FragA, FragB;
  u64 K = 0x3FF0000000000000ull;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::ROData).appendLE<u64>(K);
    K += 1; // different bytes per fragment
    SymRef S = Frag->createSymbol("", Linkage::Internal, false);
    Frag->defineSymbol(S, SecKind::ROData, 0, 8);
    Frag->section(SecKind::Text).appendLE<u32>(0);
    Frag->addReloc(SecKind::Text, 0, RelocKind::PC32, S, -4);
  }
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_FALSE(Out.hasError());
  ASSERT_EQ(Out.symbols().size(), 2u);
  EXPECT_NE(Out.relocs()[0].Sym.Idx, Out.relocs()[1].Sym.Idx);
  EXPECT_EQ(Out.symbol(Out.relocs()[0].Sym).Off, 0u);
  EXPECT_EQ(Out.symbol(Out.relocs()[1].Sym).Off, 8u);
  EXPECT_EQ(Out.section(SecKind::ROData).size(), 16u);
}

TEST(Merge, MixedPoolSizesTileWithEntryAlignment) {
  // A 4-byte float entry followed by an 8-byte double entry: the fragment
  // layout (4 bytes, 4 padding, 8 bytes) is eligible and reproduced.
  Assembler Out, FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Section &RO = Frag->section(SecKind::ROData);
    RO.appendLE<u32>(0x3F800000u);
    SymRef F = Frag->createSymbol("", Linkage::Internal, false);
    Frag->defineSymbol(F, SecKind::ROData, 0, 4);
    RO.alignToBoundary(8);
    SymRef D = Frag->createSymbol("", Linkage::Internal, false);
    u64 Off = RO.size();
    RO.appendLE<u64>(0x4000000000000000ull);
    Frag->defineSymbol(D, SecKind::ROData, Off, 8);
    Frag->section(SecKind::Text).appendLE<u32>(0);
    Frag->addReloc(SecKind::Text, 0, RelocKind::PC32, F, -4);
    Frag->addReloc(SecKind::Text, 0, RelocKind::PC32, D, -4);
  }
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_FALSE(Out.hasError());
  ASSERT_EQ(Out.symbols().size(), 2u) << "both fragments dedup to one pool";
  EXPECT_EQ(Out.section(SecKind::ROData).size(), 16u);
}

TEST(Merge, NamedRodataIsNotDeduplicated) {
  // Fragments whose rodata carries named symbols (global data, i.e. the
  // globals fragment shape) keep the wholesale section merge: identical
  // bytes under different names must remain separate objects.
  Assembler Out, FragA, FragB;
  const char *Names[2] = {"ro_a", "ro_b"};
  int N = 0;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::ROData).appendLE<u64>(0x1122334455667788ull);
    SymRef S = Frag->createSymbol(Names[N++], Linkage::Internal, false);
    Frag->defineSymbol(S, SecKind::ROData, 0, 8);
  }
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_FALSE(Out.hasError());
  SymRef A = Out.findSymbol("ro_a"), B = Out.findSymbol("ro_b");
  ASSERT_TRUE(A.isValid());
  ASSERT_TRUE(B.isValid());
  EXPECT_EQ(Out.symbol(A).Off, 0u);
  // Wholesale path: fragment B lands at the 16-byte aligned end of A's.
  EXPECT_EQ(Out.symbol(B).Off, 16u);
}

TEST(Merge, BssSizesConcatenate) {
  Assembler Out, FragA, FragB;
  FragA.section(SecKind::BSS).BssSize = 10;
  SymRef A1 = FragA.createSymbol("a", Linkage::External, false);
  FragA.defineSymbol(A1, SecKind::BSS, 0, 10);
  FragB.section(SecKind::BSS).BssSize = 8;
  SymRef B1 = FragB.createSymbol("b", Linkage::External, false);
  FragB.defineSymbol(B1, SecKind::BSS, 0, 8);
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_EQ(Out.section(SecKind::BSS).BssSize, 24u) << "16-aligned rebase";
  EXPECT_EQ(Out.symbol(Out.findSymbol("b")).Off, 16u);
}

TEST(Merge, MergedModuleSurvivesElfAndJitConsumers) {
  // A merged module must be a first-class citizen for both output paths.
  Assembler Out, FragA, FragB;
  // Fragment A: ret-only function "one" returning via JIT call.
  // mov eax, 1; ret
  for (u8 B : {0xB8, 0x01, 0x00, 0x00, 0x00, 0xC3})
    FragA.section(SecKind::Text).appendByte(B);
  SymRef One = FragA.createSymbol("one", Linkage::External, true);
  FragA.defineSymbol(One, SecKind::Text, 0, 6);
  // Fragment B: "two" calls "one" (cross-fragment) and adds 1.
  // call rel32; inc eax; ret
  FragB.section(SecKind::Text).appendByte(0xE8);
  u64 RelOff = FragB.section(SecKind::Text).size();
  FragB.section(SecKind::Text).appendLE<u32>(0);
  SymRef OneDecl = FragB.createSymbol("one", Linkage::External, true);
  FragB.addReloc(SecKind::Text, RelOff, RelocKind::PC32, OneDecl, -4);
  for (u8 B : {0xFF, 0xC0, 0xC3}) // inc eax; ret
    FragB.section(SecKind::Text).appendByte(B);
  SymRef Two = FragB.createSymbol("two", Linkage::External, true);
  FragB.defineSymbol(Two, SecKind::Text, 0, 8);

  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  ASSERT_FALSE(Out.hasError());

  std::vector<u8> Obj = writeElfObject(Out, ElfMachine::X86_64);
  EXPECT_GT(Obj.size(), 64u);
  EXPECT_EQ(Obj[0], 0x7f);

  JITMapper JIT;
  ASSERT_TRUE(JIT.map(Out));
  auto *TwoFn = reinterpret_cast<int (*)()>(JIT.address("two"));
  ASSERT_NE(TwoFn, nullptr);
  EXPECT_EQ(TwoFn(), 2);
}

TEST(Merge, SteadyStateMergeIsAllocationFree) {
  Assembler FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    for (int I = 0; I < 100; ++I)
      Frag->section(SecKind::Text).appendByte(0x90);
  }
  SymRef S = FragA.createSymbol("fn", Linkage::External, true);
  FragA.defineSymbol(S, SecKind::Text, 0, 100);
  SymRef D = FragB.createSymbol("fn", Linkage::External, true);
  FragB.addReloc(SecKind::Text, 0, RelocKind::PC32, D, -4);

  Assembler Out;
  for (int Warm = 0; Warm < 2; ++Warm) {
    Out.reset();
    Out.mergeFrom(FragA);
    Out.mergeFrom(FragB);
  }
  support::AllocWatch W;
  Out.reset();
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_EQ(W.newCalls(), 0u) << "steady-state merge touched the heap";
}

// --- Two-pass emission primitives (reserve / place / stitch) ---------------

namespace {

/// One fragment exercising every section at once: text defining \p FnName
/// plus a pool reference, an anonymous (dedup-eligible) rodata entry
/// holding \p PoolConst, mutable data, and BSS. Odd \p TextBytes sizes
/// force alignment padding between reserved slices.
void buildEmissionFragment(Assembler &Frag, const char *FnName,
                           u64 PoolConst, unsigned TextBytes) {
  Section &T = Frag.section(SecKind::Text);
  for (unsigned I = 0; I < TextBytes; ++I)
    T.appendByte(0x90);
  SymRef F = Frag.createSymbol(FnName, Linkage::External, true);
  Frag.defineSymbol(F, SecKind::Text, 0, TextBytes);
  Frag.section(SecKind::ROData).appendLE<u64>(PoolConst);
  SymRef K = Frag.createSymbol("", Linkage::Internal, false);
  Frag.defineSymbol(K, SecKind::ROData, 0, 8);
  u64 Off = T.size();
  T.appendLE<u32>(0);
  Frag.addReloc(SecKind::Text, Off, RelocKind::PC32, K, -4);
  Frag.section(SecKind::Data).appendLE<u64>(PoolConst ^ 0xAA55AA55ull);
  Frag.section(SecKind::BSS).BssSize = 8;
}

} // namespace

/// The tentpole contract at the primitive level: reserveFrom + placeFrom
/// + stitchFrom IS mergeFrom, resequenced. Reservations happen up front
/// in fragment order, placement runs in ANY order (the driver hands it
/// to a worker pool), stitching is the only ordered stage — and the
/// result is byte-identical to the serial mergeFrom walk down to the
/// full relocatable ELF, covering cross-fragment binding, FP-pool
/// dedup, named (wholesale) rodata, data, and BSS rebasing.
TEST(TwoPassEmission, ReservePlaceStitchMatchesMergeFrom) {
  Assembler FragA, FragB, FragC;
  buildEmissionFragment(FragA, "f_a", 0x3FF0000000000000ull, 5);
  buildEmissionFragment(FragB, "f_b", 0x3FF0000000000000ull, 7); // dedups
  // FragB also calls f_a — an undefined reference bound at stitch time.
  u64 CallOff = FragB.section(SecKind::Text).size();
  FragB.section(SecKind::Text).appendLE<u32>(0);
  SymRef ADecl = FragB.createSymbol("f_a", Linkage::External, true);
  FragB.addReloc(SecKind::Text, CallOff, RelocKind::PC32, ADecl, -4);
  // FragC carries *named* rodata — the wholesale (non-dedup) merge path.
  FragC.section(SecKind::Text).appendByte(0xC3);
  SymRef FC = FragC.createSymbol("f_c", Linkage::External, true);
  FragC.defineSymbol(FC, SecKind::Text, 0, 1);
  FragC.section(SecKind::ROData).appendLE<u64>(0x1122334455667788ull);
  SymRef RC = FragC.createSymbol("ro_c", Linkage::Internal, false);
  FragC.defineSymbol(RC, SecKind::ROData, 0, 8);

  Assembler Ref;
  Ref.mergeFrom(FragA);
  Ref.mergeFrom(FragB);
  Ref.mergeFrom(FragC);
  ASSERT_FALSE(Ref.hasError());

  Assembler Out;
  MergePlan PA, PB, PC;
  Out.reserveFrom(FragA, PA);
  Out.reserveFrom(FragB, PB);
  Out.reserveFrom(FragC, PC);
  ASSERT_TRUE(Out.placeFrom(FragC, PC)); // any order: disjoint slices
  ASSERT_TRUE(Out.placeFrom(FragA, PA));
  ASSERT_TRUE(Out.placeFrom(FragB, PB));
  Out.stitchFrom(FragA, PA);
  Out.stitchFrom(FragB, PB);
  Out.stitchFrom(FragC, PC);
  ASSERT_FALSE(Out.hasError()) << Out.errorMessage();

  EXPECT_EQ(writeElfObject(Out, ElfMachine::X86_64),
            writeElfObject(Ref, ElfMachine::X86_64))
      << "split reserve/place/stitch diverged from mergeFrom";
}

/// A terminal placement failure zero-fills exactly its own slice: the
/// graceful-degradation contract that lets one quarantined shard fail
/// without corrupting the neighbors already placed around it.
TEST(TwoPassEmission, ZeroSliceLeavesNeighborsIntact) {
  Assembler Frags[3], Out;
  const u8 Fill[3] = {0xAA, 0xBB, 0xCC};
  MergePlan Plans[3];
  for (int I = 0; I < 3; ++I) {
    for (int B = 0; B < 24; ++B)
      Frags[I].section(SecKind::Text).appendByte(Fill[I]);
    SymRef S = Frags[I].createSymbol(I == 0   ? "z_a"
                                     : I == 1 ? "z_b"
                                              : "z_c",
                                     Linkage::External, true);
    Frags[I].defineSymbol(S, SecKind::Text, 0, 24);
    Out.reserveFrom(Frags[I], Plans[I]);
  }
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(Out.placeFrom(Frags[I], Plans[I]));
  Out.zeroSlice(Plans[1]); // the middle shard is quarantined

  constexpr unsigned TextI = static_cast<unsigned>(SecKind::Text);
  const Section &T = Out.section(SecKind::Text);
  for (int I = 0; I < 3; ++I)
    for (u64 B = 0; B < Plans[I].Bytes[TextI]; ++B)
      ASSERT_EQ(T.Data[Plans[I].Base[TextI] + B], I == 1 ? 0 : Fill[I])
          << "slice " << I << " byte " << B;
}

/// The split path shares mergeFrom's scratch (symbol maps, dedup pool
/// index) and adds only the caller-owned plans — steady-state
/// reserve/place/stitch cycles must be allocation-free once warm,
/// exactly like the serial merge (docs/PERF.md).
TEST(TwoPassEmission, SteadyStateSplitEmissionIsAllocationFree) {
  Assembler FragA, FragB;
  buildEmissionFragment(FragA, "fn_a", 0x4000000000000000ull, 96);
  buildEmissionFragment(FragB, "fn_b", 0x4000000000000000ull, 64);
  Assembler Out;
  MergePlan PA, PB;
  auto Emit = [&] {
    Out.reset();
    Out.reserveFrom(FragA, PA);
    Out.reserveFrom(FragB, PB);
    ASSERT_TRUE(Out.placeFrom(FragA, PA));
    ASSERT_TRUE(Out.placeFrom(FragB, PB));
    Out.stitchFrom(FragA, PA);
    Out.stitchFrom(FragB, PB);
    ASSERT_FALSE(Out.hasError());
  };
  for (int Warm = 0; Warm < 2; ++Warm)
    Emit();
  support::AllocWatch W;
  Emit();
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state split emission touched the heap (" << W.newBytes()
      << " bytes)";
}

// --- rewindForRecompile (module-level symbol batching) ---------------------

TEST(Rewind, KeepsDeclarationsDropsDefinitionsAndAnonymous) {
  Assembler A;
  SymRef F = A.createSymbol("f", Linkage::External, true);
  SymRef G = A.createSymbol("g", Linkage::Internal, false);
  u32 Watermark = A.symbolCount();
  A.defineSymbol(F, SecKind::Text, 0, 4);
  SymRef Anon = A.createSymbol("", Linkage::Internal, false);
  A.defineSymbol(Anon, SecKind::ROData, 0, 8);
  SymRef Named = A.createSymbol("late", Linkage::External, false);
  A.section(SecKind::Text).appendLE<u32>(0x90909090);
  A.addReloc(SecKind::Text, 0, RelocKind::PC32, F, -4);
  (void)Named;

  u64 Epoch = A.resetEpoch();
  A.rewindForRecompile(Watermark);
  EXPECT_EQ(A.resetEpoch(), Epoch) << "rewind must not invalidate the cache";
  EXPECT_EQ(A.symbolCount(), Watermark);
  EXPECT_EQ(A.section(SecKind::Text).size(), 0u);
  EXPECT_TRUE(A.relocs().empty());
  // Kept symbols are declarations again, same handles, same names.
  EXPECT_EQ(A.findSymbol("f").Idx, F.Idx);
  EXPECT_FALSE(A.symbol(F).Defined);
  EXPECT_EQ(A.symbol(G).Link, Linkage::Internal);
  // Dropped names are gone and can be re-created cleanly.
  EXPECT_FALSE(A.findSymbol("late").isValid());
  SymRef Again = A.createSymbol("late", Linkage::External, false);
  EXPECT_EQ(Again.Idx, Watermark) << "new symbols reuse the truncated slots";
}

TEST(Merge, BssRebaseHonorsOveralignedSections) {
  // A fragment whose BSS holds a 32-byte-aligned member raises the
  // section alignment; the merge must rebase to that alignment so the
  // member's intra-section offset guarantee survives.
  Assembler Out, FragA, FragB;
  FragA.section(SecKind::BSS).BssSize = 10;
  SymRef A1 = FragA.createSymbol("a", Linkage::External, false);
  FragA.defineSymbol(A1, SecKind::BSS, 0, 10);
  Section &BBss = FragB.section(SecKind::BSS);
  BBss.Align = 32;
  BBss.BssSize = 8;
  SymRef B1 = FragB.createSymbol("b", Linkage::External, false);
  FragB.defineSymbol(B1, SecKind::BSS, 0, 8);
  Out.mergeFrom(FragA);
  Out.mergeFrom(FragB);
  EXPECT_EQ(Out.symbol(Out.findSymbol("b")).Off, 32u);
  EXPECT_EQ(Out.section(SecKind::BSS).Align, 32u)
      << "merged section must keep the strictest member alignment";
}

TEST(Merge, UnreferencedDeclarationsAreDropped) {
  // Merging keeps only definitions and actually-referenced declarations
  // (linker semantics): the sparse shard compiles never create
  // unreferenced declarations, and any source that does (e.g. a dense
  // globals fragment with its whole-module registration) must not make
  // merging K fragments quadratic in module size.
  Assembler Out, Frag;
  Frag.section(SecKind::Text).appendLE<u32>(0);
  SymRef Def = Frag.createSymbol("defined_fn", Linkage::External, true);
  Frag.defineSymbol(Def, SecKind::Text, 0, 4);
  SymRef Called = Frag.createSymbol("called_fn", Linkage::External, true);
  Frag.addReloc(SecKind::Text, 0, RelocKind::PC32, Called, -4);
  Frag.createSymbol("unused_decl", Linkage::External, true);

  Out.mergeFrom(Frag);
  EXPECT_TRUE(Out.findSymbol("defined_fn").isValid());
  EXPECT_TRUE(Out.findSymbol("called_fn").isValid());
  EXPECT_FALSE(Out.findSymbol("unused_decl").isValid())
      << "unreferenced declaration must not survive the merge";
  EXPECT_EQ(Out.symbols().size(), 2u);
}

// --- Sparse symbol materialization (on-demand mode) ------------------------

TEST(Sparse, GetOrCreateUpgradesUndefinedExternalOnly) {
  // The on-demand entry point: materializing a call target first (as an
  // undefined external function) and the same name later with its real
  // linkage must merge into one symbol, upgrading the placeholder — but a
  // re-registration must never relax an already-specific linkage.
  Assembler A;
  SymRef Ref = A.createSymbol("callee", Linkage::External, true);
  SymRef Again = A.createSymbol("callee", Linkage::Weak, true);
  EXPECT_EQ(Ref.Idx, Again.Idx);
  EXPECT_EQ(A.symbol(Ref).Link, Linkage::Weak)
      << "undefined external placeholder adopts the stronger registration";
  SymRef Third = A.createSymbol("callee", Linkage::External, false);
  EXPECT_EQ(Third.Idx, Ref.Idx);
  EXPECT_EQ(A.symbol(Ref).Link, Linkage::Weak)
      << "a later registration must not relax the linkage back";
  EXPECT_TRUE(A.symbol(Ref).IsFunc) << "function-ness is sticky";
}

TEST(Sparse, RewindToZeroIsTheShardRewind) {
  // rewindForRecompile(0) drops the whole (sparse) table at a cost
  // proportional to it — the per-shard rewind of the on-demand mode.
  // Names must be re-creatable and, at steady state, re-creating them
  // must not touch the heap (pool + capacity retained).
  Assembler A;
  auto CompileShardLike = [&A](int Shard) {
    SymRef Own =
        A.createSymbol(Shard ? "f_b" : "f_a", Linkage::External, true);
    A.section(SecKind::Text).appendLE<u32>(0x90909090);
    A.defineSymbol(Own, SecKind::Text, 0, 4);
    SymRef Callee = A.createSymbol("f_shared", Linkage::External, true);
    A.addReloc(SecKind::Text, 0, RelocKind::PC32, Callee, -4);
  };
  CompileShardLike(0);
  u64 Epoch = A.resetEpoch();
  A.rewindForRecompile(0);
  EXPECT_EQ(A.resetEpoch(), Epoch) << "sparse rewind is not a reset";
  EXPECT_EQ(A.symbolCount(), 0u);
  EXPECT_FALSE(A.findSymbol("f_a").isValid());
  EXPECT_FALSE(A.findSymbol("f_shared").isValid());
  // Warm both shard shapes, then assert the steady state.
  CompileShardLike(1);
  A.rewindForRecompile(0);
  CompileShardLike(0);
  A.rewindForRecompile(0);
  support::AllocWatch W;
  CompileShardLike(1);
  A.rewindForRecompile(0);
  CompileShardLike(0);
  EXPECT_EQ(W.newCalls(), 0u)
      << "steady-state sparse rewind/rebuild touched the heap";
}

TEST(Sparse, SnapshotCarriesOnlyDefinedAndReferencedRecords) {
  // A sparse worker table contains only what the shard touched; the
  // fragment snapshot (a mergeFrom) must preserve exactly those records
  // — and merging the fragments must resolve the on-demand declarations
  // across shards (undefined external -> defined).
  Assembler Worker, Frag, Out;
  // Shard-like content: one defined function, one on-demand call target.
  Worker.section(SecKind::Text).appendByte(0xE8);
  Worker.section(SecKind::Text).appendLE<u32>(0);
  Worker.section(SecKind::Text).appendByte(0xC3);
  SymRef Own = Worker.createSymbol("shard_fn", Linkage::External, true);
  Worker.defineSymbol(Own, SecKind::Text, 0, 6);
  SymRef Callee = Worker.createSymbol("other_fn", Linkage::External,
                                           true);
  Worker.addReloc(SecKind::Text, 1, RelocKind::PC32, Callee, -4);
  ASSERT_EQ(Worker.symbolCount(), 2u) << "sparse table: only touched syms";

  Frag.mergeFrom(Worker);
  EXPECT_EQ(Frag.symbolCount(), 2u)
      << "snapshot carries exactly the defined + referenced records";

  // The defining shard arrives later; the merge upgrades the undefined
  // external declaration to the definition.
  Assembler Def;
  Def.section(SecKind::Text).appendByte(0xC3);
  SymRef D = Def.createSymbol("other_fn", Linkage::External, true);
  Def.defineSymbol(D, SecKind::Text, 0, 1);

  Out.mergeFrom(Frag);
  EXPECT_FALSE(Out.symbol(Out.findSymbol("other_fn")).Defined);
  Out.mergeFrom(Def);
  EXPECT_FALSE(Out.hasError());
  SymRef Resolved = Out.findSymbol("other_fn");
  ASSERT_TRUE(Resolved.isValid());
  EXPECT_TRUE(Out.symbol(Resolved).Defined)
      << "undefined external upgraded to the cross-shard definition";
  ASSERT_EQ(Out.relocs().size(), 1u);
  EXPECT_EQ(Out.relocs()[0].Sym.Idx, Resolved.Idx);
}

TEST(Sparse, DuplicateStrongDefinitionAcrossShardsStillDiagnosed) {
  // On-demand materialization must not weaken the duplicate-strong
  // diagnostic: two shards defining the same strong symbol surface the
  // module error at merge time, exactly like the dense path.
  Assembler Out, FragA, FragB;
  for (Assembler *Frag : {&FragA, &FragB}) {
    Frag->section(SecKind::Text).appendByte(0xC3);
    SymRef S = Frag->createSymbol("dup_fn", Linkage::External, true);
    Frag->defineSymbol(S, SecKind::Text, 0, 1);
  }
  Out.mergeFrom(FragA);
  EXPECT_FALSE(Out.hasError());
  Out.mergeFrom(FragB);
  EXPECT_TRUE(Out.hasError());
  EXPECT_NE(Out.errorMessage().find("dup_fn"), std::string_view::npos);
}

// --- Canonical ELF symbol order --------------------------------------------

TEST(Elf, SymbolTableOrderIsCanonicalAcrossInsertionOrders) {
  // The ELF writer must emit a symbol order that is a pure function of
  // the symbols' content: a serial compile registers module-order, the
  // parallel merge materializes first-reference-order — both must produce
  // byte-identical objects.
  auto Populate = [](Assembler &A, bool Reversed) {
    Section &T = A.section(SecKind::Text);
    for (int I = 0; I < 8; ++I)
      T.appendByte(0xC3);
    SymRef F1, F2;
    if (!Reversed) {
      F1 = A.createSymbol("alpha", Linkage::External, true);
      F2 = A.createSymbol("beta", Linkage::Internal, true);
    } else {
      F2 = A.createSymbol("beta", Linkage::Internal, true);
      F1 = A.createSymbol("alpha", Linkage::External, true);
    }
    A.defineSymbol(F1, SecKind::Text, 0, 4);
    A.defineSymbol(F2, SecKind::Text, 4, 4);
    SymRef Und = A.createSymbol("ext_ref", Linkage::External, true);
    A.addReloc(SecKind::Text, 0, RelocKind::PC32, Und, -4);
  };
  Assembler A, B;
  Populate(A, false);
  Populate(B, true);
  EXPECT_EQ(writeElfObject(A, ElfMachine::X86_64),
            writeElfObject(B, ElfMachine::X86_64))
      << "symbol insertion order leaked into the ELF image";
}

TEST(Elf, UnreferencedDeclarationsAreOmitted) {
  // An undefined symbol no relocation references carries no
  // linker-visible information; the dense paths register whole-module
  // tables, the sparse paths never create such entries — omitting them
  // makes both paths' objects identical.
  Assembler A, B;
  for (Assembler *X : {&A, &B}) {
    X->section(SecKind::Text).appendByte(0xC3);
    SymRef S = X->createSymbol("fn", Linkage::External, true);
    X->defineSymbol(S, SecKind::Text, 0, 1);
  }
  A.createSymbol("never_called", Linkage::External, true);
  EXPECT_EQ(writeElfObject(A, ElfMachine::X86_64),
            writeElfObject(B, ElfMachine::X86_64))
      << "unreferenced declaration leaked into the ELF image";
}
