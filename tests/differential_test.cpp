//===- tests/differential_test.cpp - Interpreter vs TPDE JIT fuzzing -------===//
///
/// Property-based differential testing: random structured TIR programs are
/// executed by the reference interpreter and by TPDE-compiled machine code;
/// results must match bit-for-bit. Memory side effects on the scratch
/// global are compared as well. This is the main correctness oracle for
/// the register allocator and instruction compilers.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "copypatch/CopyPatch.h"
#include "tir/Interp.h"
#include "tir/Printer.h"
#include "tir/Verifier.h"
#include "tpde_tir/ParallelCompiler.h"
#include "tpde_tir/TirCompilerX64.h"
#include "workloads/Generator.h"

#include <cstring>
#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::tir;
using namespace tpde::workloads;

namespace {

struct DiffParam {
  u64 Seed;
  bool SSAForm;
};

class Differential : public ::testing::TestWithParam<DiffParam> {};

enum class Backend { Tpde, TpdeParallel, BaselineO0, BaselineO1, CopyPatch };

bool compileWith(Backend BE, Module &M, asmx::Assembler &Asm) {
  switch (BE) {
  case Backend::Tpde:
    return tpde_tir::compileModuleX64(M, Asm);
  case Backend::TpdeParallel: {
    // Sharded compilation with the merged-module output: one function
    // per shard guarantees every call in the module crosses a shard
    // boundary and is linked through Assembler::mergeFrom().
    tpde_tir::ParallelCompileOptions Opts;
    Opts.NumThreads = 3;
    Opts.FuncsPerShard = 1;
    tpde_tir::ParallelModuleCompiler PC(M, Opts);
    return PC.compile(Asm);
  }
  case Backend::BaselineO0:
    return baseline::compileModule(M, Asm, baseline::OptLevel::O0);
  case Backend::BaselineO1:
    return baseline::compileModule(M, Asm, baseline::OptLevel::O1);
  case Backend::CopyPatch:
    return copypatch::compileModule(M, Asm);
  }
  TPDE_UNREACHABLE("bad backend");
}

void runDifferential(const Profile &P, Backend BE = Backend::Tpde) {
  Module M;
  genModule(M, P);
  std::string Err;
  ASSERT_TRUE(verifyModule(M, Err)) << Err;

  asmx::Assembler Asm;
  ASSERT_TRUE(compileWith(BE, M, Asm))
      << "compilation failed, seed " << P.Seed;
  asmx::JITMapper JIT;
  ASSERT_TRUE(JIT.map(Asm));

  u32 ScratchIdx = 0;
  for (u32 I = 0; I < M.Globals.size(); ++I)
    if (M.Globals[I].Name == "wl_scratch")
      ScratchIdx = I;
  u8 *JitScratch = static_cast<u8 *>(JIT.address("wl_scratch"));
  ASSERT_NE(JitScratch, nullptr);

  u32 Entry = M.findFunc("main_entry");
  ASSERT_NE(Entry, ~0u);
  auto *F = reinterpret_cast<u64 (*)(u64, u64)>(
      JIT.address(M.Funcs[Entry].Name));
  ASSERT_NE(F, nullptr);

  const u64 Inputs[][2] = {
      {0, 0}, {1, 2}, {0xdeadbeef, 123456789}, {~0ull, 0x8000000000000000ull},
  };
  for (auto &In : Inputs) {
    // Fresh interpreter per input so global state starts identical.
    Interp Ip(M);
    u8 *IpScratch = Ip.globalStorage(ScratchIdx);
    std::vector<u8> InitialMem(IpScratch, IpScratch + 576);
    std::memcpy(JitScratch, InitialMem.data(), InitialMem.size());

    auto RefOut = Ip.run(Entry, {{In[0], 0}, {In[1], 0}});
    ASSERT_TRUE(RefOut.has_value()) << "interpreter trapped, seed " << P.Seed;
    u64 JitOut = F(In[0], In[1]);
    EXPECT_EQ(JitOut, RefOut->Lo)
        << "result mismatch, seed " << P.Seed << " inputs " << In[0] << ","
        << In[1];
    EXPECT_EQ(std::memcmp(JitScratch, IpScratch, 576), 0)
        << "memory side effects diverge, seed " << P.Seed;
  }
}

} // namespace

static Profile fuzzProfile(u64 Seed, bool SSAForm) {
  Profile P;
  P.Seed = Seed;
  P.NumFuncs = 4;
  P.RegionBudget = 8;
  P.InstsPerBlock = 6;
  P.MaxLoopDepth = 2;
  P.MemoryPct = 25;
  P.FloatPct = 10;
  P.CallPct = 8;
  P.BranchPct = 30;
  P.I128Pct = 5;
  P.NarrowPct = 15;
  P.SSAForm = SSAForm;
  return P;
}

TEST_P(Differential, TpdeMatchesInterpreter) {
  DiffParam DP = GetParam();
  runDifferential(fuzzProfile(DP.Seed, DP.SSAForm), Backend::Tpde);
}

TEST_P(Differential, TpdeParallelMatchesInterpreter) {
  DiffParam DP = GetParam();
  runDifferential(fuzzProfile(DP.Seed, DP.SSAForm), Backend::TpdeParallel);
}

TEST_P(Differential, BaselineO0MatchesInterpreter) {
  DiffParam DP = GetParam();
  runDifferential(fuzzProfile(DP.Seed, DP.SSAForm), Backend::BaselineO0);
}

TEST_P(Differential, BaselineO1MatchesInterpreter) {
  DiffParam DP = GetParam();
  runDifferential(fuzzProfile(DP.Seed, DP.SSAForm), Backend::BaselineO1);
}

TEST_P(Differential, CopyPatchMatchesInterpreter) {
  DiffParam DP = GetParam();
  runDifferential(fuzzProfile(DP.Seed, DP.SSAForm), Backend::CopyPatch);
}

static std::vector<DiffParam> makeParams() {
  std::vector<DiffParam> Out;
  for (u64 S = 1; S <= 40; ++S) {
    Out.push_back({S, true});
    Out.push_back({S, false});
  }
  return Out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::ValuesIn(makeParams()),
                         [](const ::testing::TestParamInfo<DiffParam> &I) {
                           return std::string(I.param.SSAForm ? "ssa" : "o0") +
                                  "_seed" + std::to_string(I.param.Seed);
                         });

TEST(DifferentialSpec, SpecLikeProfilesCompileAndRun) {
  // The nine benchmark workloads themselves must compile and agree with
  // the interpreter on one input (smaller scale for test time).
  for (bool O0 : {true, false}) {
    for (auto &NP : specLikeProfiles(O0)) {
      Profile P = NP.P;
      P.NumFuncs = 3;
      P.RegionBudget = 6;
      runDifferential(P);
    }
  }
}
