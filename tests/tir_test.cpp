//===- tests/tir_test.cpp - TIR builder/verifier/interpreter tests --------===//

#include "tir/Builder.h"
#include "tir/Interp.h"
#include "tir/Printer.h"
#include "tir/Verifier.h"

#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::tir;

namespace {

/// Builds: i64 f(i64 a, i64 b) { return a + b*2; }
Module simpleModule() {
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64, Type::I64});
  BlockRef Entry = B.addBlock("entry");
  B.setInsertPoint(Entry);
  ValRef Two = B.constInt(Type::I64, 2);
  ValRef Mul = B.binop(Op::Mul, B.arg(1), Two);
  ValRef Sum = B.binop(Op::Add, B.arg(0), Mul);
  B.ret(Sum);
  B.finish();
  return M;
}

} // namespace

TEST(TIRBuilder, SimpleFunction) {
  Module M = simpleModule();
  std::string Err;
  EXPECT_TRUE(verifyModule(M, Err)) << Err;
  EXPECT_EQ(M.Funcs.size(), 1u);
  EXPECT_EQ(M.Funcs[0].Blocks.size(), 1u);
  // 2 args + 1 const + 3 instructions (mul, add, ret)
  EXPECT_EQ(M.Funcs[0].valueCount(), 6u);
}

TEST(TIRBuilder, ConstantsAreDeduplicated) {
  Module M;
  FunctionBuilder B(M, "g", Type::I64, {});
  B.setInsertPoint(B.addBlock());
  ValRef C1 = B.constInt(Type::I64, 7);
  ValRef C2 = B.constInt(Type::I64, 7);
  ValRef C3 = B.constInt(Type::I32, 7);
  EXPECT_EQ(C1, C2);
  EXPECT_NE(C1, C3);
  B.ret(C1);
  B.finish();
}

TEST(TIRInterp, Arithmetic) {
  Module M = simpleModule();
  Interp I(M);
  auto R = I.run(0, {{5, 0}, {10, 0}});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Lo, 25u);
}

TEST(TIRInterp, LoopWithPhis) {
  // sum(n) = 0 + 1 + ... + (n-1)
  Module M;
  FunctionBuilder B(M, "sum", Type::I64, {Type::I64});
  BlockRef Entry = B.addBlock("entry");
  BlockRef Loop = B.addBlock("loop");
  BlockRef Exit = B.addBlock("exit");
  B.setInsertPoint(Entry);
  B.br(Loop);
  B.setInsertPoint(Loop);
  ValRef I = B.phi(Type::I64);
  ValRef Acc = B.phi(Type::I64);
  ValRef Acc2 = B.binop(Op::Add, Acc, I);
  ValRef I2 = B.binop(Op::Add, I, B.constInt(Type::I64, 1));
  ValRef Cmp = B.icmp(ICmp::Slt, I2, B.arg(0));
  B.condBr(Cmp, Loop, Exit);
  B.setInsertPoint(Exit);
  B.ret(Acc2);
  B.addPhiIncoming(I, Entry, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, Loop, I2);
  B.addPhiIncoming(Acc, Entry, B.constInt(Type::I64, 0));
  B.addPhiIncoming(Acc, Loop, Acc2);
  B.finish();

  std::string Err;
  ASSERT_TRUE(verifyModule(M, Err)) << Err;
  Interp In(M);
  auto R = In.run(0, {{100, 0}});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Lo, 4950u);
}

TEST(TIRInterp, MemoryAndStackVars) {
  Module M;
  FunctionBuilder B(M, "mem", Type::I32, {Type::I32});
  B.setInsertPoint(B.addBlock());
  ValRef Slot = B.stackVar(4, 4);
  B.store(B.arg(0), Slot);
  ValRef L = B.load(Type::I32, Slot);
  ValRef R = B.binop(Op::Add, L, B.constInt(Type::I32, 1));
  B.ret(R);
  B.finish();
  std::string Err;
  ASSERT_TRUE(verifyModule(M, Err)) << Err;
  Interp I(M);
  EXPECT_EQ(I.run(0, {{41, 0}})->Lo, 42u);
}

TEST(TIRInterp, GlobalsAndPtrAdd) {
  Module M;
  u32 G = addGlobal(M, "arr", 64, 8);
  FunctionBuilder B(M, "idx", Type::I64, {Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef Base = B.globalAddr(G);
  ValRef P = B.ptrAdd(Base, B.arg(0), 8, 8);
  ValRef L = B.load(Type::I64, P);
  B.ret(L);
  B.finish();
  Interp I(M);
  u64 *Arr = reinterpret_cast<u64 *>(I.globalStorage(G));
  for (int K = 0; K < 8; ++K)
    Arr[K] = K * 100;
  EXPECT_EQ(I.run(0, {{2, 0}})->Lo, 300u); // arr[(2*8+8)/8] = arr[3]
}

TEST(TIRInterp, DivisionTraps) {
  Module M;
  FunctionBuilder B(M, "div", Type::I64, {Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  B.ret(B.binop(Op::SDiv, B.arg(0), B.arg(1)));
  B.finish();
  Interp I(M);
  EXPECT_EQ(I.run(0, {{42, 0}, {7, 0}})->Lo, 6u);
  EXPECT_FALSE(I.run(0, {{42, 0}, {0, 0}}).has_value());
  // INT64_MIN / -1 traps like hardware.
  EXPECT_FALSE(
      I.run(0, {{0x8000000000000000ull, 0}, {static_cast<u64>(-1), 0}})
          .has_value());
}

TEST(TIRInterp, I128Arithmetic) {
  Module M;
  FunctionBuilder B(M, "add128", Type::I64,
                    {Type::I64, Type::I64, Type::I64, Type::I64});
  B.setInsertPoint(B.addBlock());
  // (a zext to 128 | b << 64) + (c | d << 64), return high half
  ValRef A = B.cast(Op::Zext, Type::I128, B.arg(0));
  ValRef Bv = B.cast(Op::Zext, Type::I128, B.arg(1));
  ValRef C = B.cast(Op::Zext, Type::I128, B.arg(2));
  ValRef D = B.cast(Op::Zext, Type::I128, B.arg(3));
  ValRef C64 = B.constInt(Type::I128, 64);
  ValRef Hi1 = B.binop(Op::Shl, Bv, C64);
  ValRef Hi2 = B.binop(Op::Shl, D, C64);
  ValRef X = B.binop(Op::Or, A, Hi1);
  ValRef Y = B.binop(Op::Or, C, Hi2);
  ValRef Sum = B.binop(Op::Add, X, Y);
  ValRef Hi = B.binop(Op::LShr, Sum, C64);
  B.ret(B.cast(Op::Trunc, Type::I64, Hi));
  B.finish();
  std::string Err;
  ASSERT_TRUE(verifyModule(M, Err)) << Err;
  Interp I(M);
  // (2^64-1 + 1) carries into the high half.
  auto R = I.run(0, {{~0ull, 0}, {5, 0}, {1, 0}, {7, 0}});
  EXPECT_EQ(R->Lo, 13u);
}

TEST(TIRInterp, FloatOps) {
  Module M;
  FunctionBuilder B(M, "fp", Type::F64, {Type::F64, Type::F64});
  B.setInsertPoint(B.addBlock());
  ValRef Mul = B.binop(Op::FMul, B.arg(0), B.arg(1));
  ValRef Add = B.binop(Op::FAdd, Mul, B.constF64(1.5));
  B.ret(Add);
  B.finish();
  Interp I(M);
  auto ToBits = [](double D) {
    u64 B;
    memcpy(&B, &D, 8);
    return B;
  };
  auto R = I.run(0, {{ToBits(3.0), 0}, {ToBits(4.0), 0}});
  double Res;
  memcpy(&Res, &R->Lo, 8);
  EXPECT_DOUBLE_EQ(Res, 13.5);
}

TEST(TIRInterp, CallsAndNatives) {
  Module M;
  u32 Ext = declareFunc(M, "twice", Type::I64, {Type::I64});
  FunctionBuilder B(M, "caller", Type::I64, {Type::I64});
  B.setInsertPoint(B.addBlock());
  ValRef R = B.call(Ext, Type::I64, {B.arg(0)});
  B.ret(B.binop(Op::Add, R, B.constInt(Type::I64, 1)));
  B.finish();
  Interp I(M);
  I.registerNative("twice", [](const std::vector<Interp::Val> &A) {
    return Interp::Val{A[0].Lo * 2, 0};
  });
  EXPECT_EQ(I.run(1, {{21, 0}})->Lo, 43u);
  // Without the native registered, the call traps.
  Interp I2(M);
  EXPECT_FALSE(I2.run(1, {{21, 0}}).has_value());
}

TEST(TIRVerifier, CatchesMalformedIR) {
  // Use before def across blocks without dominance.
  Module M;
  FunctionBuilder B(M, "bad", Type::I64, {Type::I64});
  BlockRef E = B.addBlock("e");
  BlockRef L = B.addBlock("l");
  BlockRef R = B.addBlock("r");
  BlockRef J = B.addBlock("j");
  B.setInsertPoint(E);
  ValRef C = B.icmp(ICmp::Eq, B.arg(0), B.constInt(Type::I64, 0));
  B.condBr(C, L, R);
  B.setInsertPoint(L);
  ValRef X = B.binop(Op::Add, B.arg(0), B.constInt(Type::I64, 1));
  B.br(J);
  B.setInsertPoint(R);
  B.br(J);
  B.setInsertPoint(J);
  B.ret(X); // X does not dominate J
  B.finish();
  std::string Err;
  EXPECT_FALSE(verifyModule(M, Err));
  EXPECT_NE(Err.find("use before def"), std::string::npos);
}

TEST(TIRVerifier, PhiPredecessorMismatch) {
  Module M;
  FunctionBuilder B(M, "badphi", Type::I64, {});
  BlockRef E = B.addBlock();
  BlockRef J = B.addBlock();
  B.setInsertPoint(E);
  B.br(J);
  B.setInsertPoint(J);
  ValRef P = B.phi(Type::I64);
  // Incoming from J itself, which is not a predecessor.
  B.addPhiIncoming(P, J, B.constInt(Type::I64, 3));
  B.ret(P);
  B.finish();
  std::string Err;
  EXPECT_FALSE(verifyModule(M, Err));
}

TEST(TIRVerifier, IDomComputation) {
  // Diamond: entry -> a, b -> join
  Module M;
  FunctionBuilder B(M, "diamond", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), A = B.addBlock(), Bb = B.addBlock(),
           J = B.addBlock();
  B.setInsertPoint(E);
  ValRef C = B.icmp(ICmp::Eq, B.arg(0), B.constInt(Type::I64, 0));
  B.condBr(C, A, Bb);
  B.setInsertPoint(A);
  B.br(J);
  B.setInsertPoint(Bb);
  B.br(J);
  B.setInsertPoint(J);
  B.ret(B.arg(0));
  B.finish();
  auto IDom = computeIDom(M.Funcs[0]);
  EXPECT_EQ(IDom[A], E);
  EXPECT_EQ(IDom[Bb], E);
  EXPECT_EQ(IDom[J], E);
}

TEST(TIRPrinter, RoundTripText) {
  Module M = simpleModule();
  std::string Text = printFunction(M, M.Funcs[0]);
  EXPECT_NE(Text.find("func @f"), std::string::npos);
  EXPECT_NE(Text.find("mul i64"), std::string::npos);
  EXPECT_NE(Text.find("ret i64"), std::string::npos);
}
