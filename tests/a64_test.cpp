//===- tests/a64_test.cpp - AArch64 encoder + simulator tests -------------===//
///
/// Golden-byte checks for the A64 encoder (words verified against the
/// architecture manual / an independent assembler) and execution tests
/// that run encoder output on the simulator. Because the simulator's
/// decoder is written against the architecture rather than against the
/// encoder, agreement of both with the golden words cross-checks them.
///
//===----------------------------------------------------------------------===//

#include "a64/Encoder.h"
#include "a64/Sim.h"
#include "support/AllocCounter.h"

#include <gtest/gtest.h>

#include <vector>

TPDE_INSTALL_ALLOC_COUNTER

using namespace tpde;
using namespace tpde::a64;

namespace {

/// Collects the words emitted by one encoder call.
class EncTest : public ::testing::Test {
protected:
  asmx::Assembler Asm;
  Emitter E{Asm};

  u32 wordAt(size_t I) const { return Asm.text().readLE<u32>(4 * I); }
  size_t numWords() const { return Asm.text().size() / 4; }
};

TEST_F(EncTest, AddSubRegister) {
  E.addRRR(8, X0, X1, X2);
  E.addRRR(4, X0, X1, X2);
  E.addRRR(8, X0, X1, X2, /*SetFlags=*/true);
  E.subRRR(8, X0, X1, X2);
  E.subRRR(8, X0, X1, X2, /*SetFlags=*/true);
  E.cmpRR(8, X1, X2);
  EXPECT_EQ(wordAt(0), 0x8B020020u);
  EXPECT_EQ(wordAt(1), 0x0B020020u);
  EXPECT_EQ(wordAt(2), 0xAB020020u);
  EXPECT_EQ(wordAt(3), 0xCB020020u);
  EXPECT_EQ(wordAt(4), 0xEB020020u);
  EXPECT_EQ(wordAt(5), 0xEB02003Fu);
}

TEST_F(EncTest, AddSubImmediate) {
  E.addRI(8, X0, X1, 42);
  E.subRI(8, SP, SP, 16);
  E.addRI(8, X2, X3, 1u << 12); // shifted immediate form
  EXPECT_EQ(wordAt(0), 0x9100A820u);
  EXPECT_EQ(wordAt(1), 0xD10043FFu);
  EXPECT_EQ(wordAt(2), 0x91400462u);
}

TEST_F(EncTest, Moves) {
  E.movRR(8, X0, X1);
  E.movRR(4, X0, X1);
  E.movSP(FP, SP); // mov x29, sp
  E.movRI(X0, 1);
  E.movRI(X0, 0x12340000u);
  EXPECT_EQ(wordAt(0), 0xAA0103E0u);
  EXPECT_EQ(wordAt(1), 0x2A0103E0u);
  EXPECT_EQ(wordAt(2), 0x910003FDu);
  EXPECT_EQ(wordAt(3), 0xD2800020u);
  EXPECT_EQ(wordAt(4), 0xD2A24680u); // movz x0, #0x1234, lsl #16
}

TEST_F(EncTest, LogicalAndBitmask) {
  E.logicRI(LogicOp::And, 8, X0, X1, 1);
  E.logicRI(LogicOp::Orr, 4, X0, X1, 1);
  E.tstRI(8, X0, 1);
  E.logicRRR(LogicOp::Eor, 8, X0, X1, X2);
  E.mvnRR(8, X0, X1);
  EXPECT_EQ(wordAt(0), 0x92400020u);
  EXPECT_EQ(wordAt(1), 0x32000020u);
  EXPECT_EQ(wordAt(2), 0xF240001Fu);
  EXPECT_EQ(wordAt(3), 0xCA020020u);
  EXPECT_EQ(wordAt(4), 0xAA2103E0u);
}

TEST_F(EncTest, MulDiv) {
  E.maddRRRR(8, X0, X1, X2, X3);
  E.mulRRR(8, X0, X1, X2);
  E.sdivRRR(8, X0, X1, X2);
  E.udivRRR(4, X0, X1, X2);
  E.smulh(X0, X1, X2);
  E.umulh(X0, X1, X2);
  EXPECT_EQ(wordAt(0), 0x9B020C20u);
  EXPECT_EQ(wordAt(1), 0x9B027C20u);
  EXPECT_EQ(wordAt(2), 0x9AC20C20u);
  EXPECT_EQ(wordAt(3), 0x1AC20820u);
  EXPECT_EQ(wordAt(4), 0x9B427C20u);
  EXPECT_EQ(wordAt(5), 0x9BC27C20u);
}

TEST_F(EncTest, Shifts) {
  E.shiftRRR(ShiftOp::Lsl, 8, X0, X1, X2);
  E.shiftRI(ShiftOp::Lsl, 8, X0, X1, 4);
  E.shiftRI(ShiftOp::Lsr, 8, X0, X1, 4);
  E.shiftRI(ShiftOp::Asr, 4, X0, X1, 3);
  E.extrRRI(8, X0, X1, X2, 8);
  EXPECT_EQ(wordAt(0), 0x9AC22020u);
  EXPECT_EQ(wordAt(1), 0xD37CEC20u);
  EXPECT_EQ(wordAt(2), 0xD344FC20u);
  EXPECT_EQ(wordAt(3), 0x13037C20u);
  EXPECT_EQ(wordAt(4), 0x93C22020u);
}

TEST_F(EncTest, Extensions) {
  E.sxtb(X0, X1);
  E.sxth(X3, X2);
  E.sxtw(X0, X1);
  E.uxtb(X0, X1);
  EXPECT_EQ(wordAt(0), 0x93401C20u);
  EXPECT_EQ(wordAt(1), 0x93403C43u);
  EXPECT_EQ(wordAt(2), 0x93407C20u);
  EXPECT_EQ(wordAt(3), 0x53001C20u);
}

TEST_F(EncTest, Conditionals) {
  E.csel(8, X0, X1, X2, Cond::EQ);
  E.cset(X0, Cond::NE);
  E.adcsRRR(8, X0, X1, X2);
  E.sbcsRRR(8, X0, X1, X2);
  EXPECT_EQ(wordAt(0), 0x9A820020u);
  EXPECT_EQ(wordAt(1), 0x9A9F07E0u);
  EXPECT_EQ(wordAt(2), 0xBA020020u);
  EXPECT_EQ(wordAt(3), 0xFA020020u);
}

TEST_F(EncTest, LoadsStores) {
  E.ldr(8, X0, Mem(X1, 16));
  E.str(4, Mem(X1, 4), X0);
  E.ldr(1, X0, Mem(X1));
  E.ldr(8, X0, Mem(X1, -8));
  E.ldr(8, X0, Mem(X1, X2, 0));
  E.ldr(8, X0, Mem(X1, X2, 3));
  E.ldrSext(4, X0, Mem(X1));
  E.stpPre(FP, LR, SP, -16);
  E.ldpPost(FP, LR, SP, 16);
  EXPECT_EQ(wordAt(0), 0xF9400820u);
  EXPECT_EQ(wordAt(1), 0xB9000420u);
  EXPECT_EQ(wordAt(2), 0x39400020u);
  EXPECT_EQ(wordAt(3), 0xF85F8020u);
  EXPECT_EQ(wordAt(4), 0xF8626820u);
  EXPECT_EQ(wordAt(5), 0xF8627820u);
  EXPECT_EQ(wordAt(6), 0xB9800020u);
  EXPECT_EQ(wordAt(7), 0xA9BF7BFDu);
  EXPECT_EQ(wordAt(8), 0xA8C17BFDu);
}

TEST_F(EncTest, ControlFlow) {
  asmx::Label L = Asm.makeLabel();
  E.bLabel(L);      // forward by 8
  E.nop();          // skipped
  Asm.bindLabel(L);
  E.ret();
  E.brReg(X16);
  E.blrReg(X8);
  E.brk(0);
  EXPECT_EQ(wordAt(0), 0x14000002u);
  EXPECT_EQ(wordAt(1), 0xD503201Fu);
  EXPECT_EQ(wordAt(2), 0xD65F03C0u);
  EXPECT_EQ(wordAt(3), 0xD61F0200u);
  EXPECT_EQ(wordAt(4), 0xD63F0100u);
  EXPECT_EQ(wordAt(5), 0xD4200000u);
}

TEST_F(EncTest, CondBranch) {
  asmx::Label L = Asm.makeLabel();
  E.bcondLabel(Cond::EQ, L);
  E.cbzLabel(8, X0, L);
  Asm.bindLabel(L);
  EXPECT_EQ(wordAt(0), 0x54000040u); // b.eq .+8
  EXPECT_EQ(wordAt(1), 0xB4000020u); // cbz x0, .+4
}

TEST_F(EncTest, ScalarFP) {
  E.fpArith(FpOp::Add, 8, V0, V1, V2);
  E.fpArith(FpOp::Mul, 4, V0, V1, V2);
  E.fpArith(FpOp::Div, 8, V0, V1, V2);
  E.fpArith(FpOp::Sub, 8, V0, V1, V2);
  E.fpCmp(8, V1, V2);
  E.fmovToFp(8, V0, X1);
  E.fmovFromFp(8, X0, V1);
  E.cvtSiToFp(8, 8, V0, X1);
  E.cvtSiToFp(4, 8, V0, X1);
  E.cvtFpToSi(8, 4, X0, V1);
  E.fpCvt(4, V0, V1); // fcvt d0, s1
  E.fpCvt(8, V0, V1); // fcvt s0, d1
  E.fpNeg(8, V0, V1);
  E.fpMovRR(8, V0, V1);
  EXPECT_EQ(wordAt(0), 0x1E622820u);
  EXPECT_EQ(wordAt(1), 0x1E220820u);
  EXPECT_EQ(wordAt(2), 0x1E621820u);
  EXPECT_EQ(wordAt(3), 0x1E623820u);
  EXPECT_EQ(wordAt(4), 0x1E622020u);
  EXPECT_EQ(wordAt(5), 0x9E670020u);
  EXPECT_EQ(wordAt(6), 0x9E660020u);
  EXPECT_EQ(wordAt(7), 0x9E620020u);
  EXPECT_EQ(wordAt(8), 0x1E620020u);
  EXPECT_EQ(wordAt(9), 0x1E780020u);
  EXPECT_EQ(wordAt(10), 0x1E22C020u);
  EXPECT_EQ(wordAt(11), 0x1E624020u);
  EXPECT_EQ(wordAt(12), 0x1E614020u);
  EXPECT_EQ(wordAt(13), 0x1E604020u);
}

/// The write-cursor batching regression (mirrors the x64 encoder suite):
/// once the section reached its high-water mark, re-emitting the same
/// instruction stream — covering every multi-word path (immediate
/// materialization, X16 displacement fallbacks, relocations, NOP pads) —
/// must not touch the heap, and must produce identical bytes.
TEST(EncBatching, SteadyStateEmissionIsAllocationFreeAndByteStable) {
  asmx::Assembler Asm;
  Emitter E(Asm);
  auto EmitAll = [&] {
    asmx::SymRef S = Asm.createSymbol("g", asmx::Linkage::External, false);
    E.movRI(X0, 0x123456789ABCDEF0ull);    // MOVZ + 3x MOVK
    E.movRI(X1, ~u64(0x1234));             // MOVN path
    E.addRI(8, X0, X1, 0xFFFFFFFFull);     // X16 materialization
    E.addRI(8, X2, X3, (u64(5) << 12) | 7); // two-instruction imm24
    E.subRI(8, SP, SP, 1u << 13);          // shifted imm12
    E.logicRI(LogicOp::And, 8, X0, X1, 5); // unencodable -> X16
    E.logicRI(LogicOp::Orr, 8, X0, X1, 0xFF); // bitmask immediate
    E.cmpRI(8, X0, 123456789);             // X16 compare
    E.cmpRI(8, X0, 4097);                  // CMN path
    E.ldr(8, X0, Mem(X1, i64(1) << 20));   // X16 displacement
    E.str(8, Mem(X1, -4096), X0);
    E.leaSym(X0, S);                       // ADRP+ADD with relocations
    E.blSym(S);
    E.addRRR(8, X0, X1, X2);
    E.mulRRR(8, X0, X1, X2);
    E.fpArith(FpOp::Add, 8, V0, V1, V2);
    E.nops(72);                            // one reservation for the pad
  };
  EmitAll(); // grows buffers/symbol pool to the high-water mark
  std::vector<u8> First(Asm.text().Data.begin(), Asm.text().Data.end());
  Asm.reset();
  support::AllocWatch W;
  EmitAll();
  u64 Calls = W.newCalls(), Bytes = W.newBytes();
  EXPECT_EQ(Calls, 0u) << "steady-state a64 emission allocated " << Calls
                       << " times (" << Bytes << " bytes)";
  std::vector<u8> Second(Asm.text().Data.begin(), Asm.text().Data.end());
  EXPECT_EQ(First, Second);
}

TEST(LogicalImm, EncodableValues) {
  u32 N, Immr, Imms;
  EXPECT_TRUE(encodeLogicalImm(1, 64, N, Immr, Imms));
  EXPECT_EQ(N, 1u);
  EXPECT_EQ(Immr, 0u);
  EXPECT_EQ(Imms, 0u);
  EXPECT_TRUE(encodeLogicalImm(0xFF, 64, N, Immr, Imms));
  EXPECT_TRUE(encodeLogicalImm(0xFFFFFFFF00000000ull, 64, N, Immr, Imms));
  EXPECT_TRUE(encodeLogicalImm(0x5555555555555555ull, 64, N, Immr, Imms));
  EXPECT_TRUE(encodeLogicalImm(0x0000FFFF0000FFFFull, 64, N, Immr, Imms));
  EXPECT_TRUE(encodeLogicalImm(0x7, 32, N, Immr, Imms));
  EXPECT_FALSE(encodeLogicalImm(0, 64, N, Immr, Imms));
  EXPECT_FALSE(encodeLogicalImm(~0ull, 64, N, Immr, Imms));
  EXPECT_FALSE(encodeLogicalImm(0x123456789ABCDEF0ull, 64, N, Immr, Imms));
  EXPECT_FALSE(encodeLogicalImm(5, 64, N, Immr, Imms));
}

// ---------------------------------------------------------------------------
// Simulator execution tests: encode, map, run.
// ---------------------------------------------------------------------------

/// Builds a function from \p Gen, maps it, and provides call().
class SimRun {
public:
  template <typename Fn> explicit SimRun(Fn Gen) {
    Emitter E(Asm);
    asmx::SymRef Sym = Asm.createSymbol("f", asmx::Linkage::External, true);
    Asm.defineSymbol(Sym, asmx::SecKind::Text, 0, 0);
    Gen(E, S);
    bool OK = Mod.map(Asm, S);
    assert(OK && "mapping failed");
    (void)OK;
    Entry = Mod.address("f");
  }

  u64 call(std::vector<u64> Args = {}, std::vector<bool> Fp = {}) {
    return S.call(Entry, Args, Fp);
  }

  asmx::Assembler Asm;
  Sim S;
  SimModule Mod;
  u64 Entry = 0;
};

TEST(A64Sim, AddFunction) {
  SimRun R([](Emitter &E, Sim &) {
    E.addRRR(8, X0, X0, X1);
    E.ret();
  });
  EXPECT_EQ(R.call({5, 7}), 12u);
  EXPECT_EQ(R.call({~0ull, 1}), 0u);
}

TEST(A64Sim, MovRIValues) {
  for (u64 K : {u64(0), u64(1), u64(0xFFFF), u64(0x10000), u64(0xDEADBEEF),
                u64(0x123456789ABCDEF0ull), ~u64(0), u64(0) - 2,
                u64(0xFFFFFFFF00000000ull), u64(0x8000000000000000ull)}) {
    SimRun R([K](Emitter &E, Sim &) {
      E.movRI(X0, K);
      E.ret();
    });
    EXPECT_EQ(R.call(), K) << "imm " << K;
  }
}

TEST(A64Sim, LogicalImmSemantics) {
  for (u64 K : {u64(1), u64(0xFF), u64(0xF0F0F0F0F0F0F0F0ull), u64(0x7),
                u64(0x123456789ABCDEFull), u64(5)}) {
    SimRun R([K](Emitter &E, Sim &) {
      E.logicRI(LogicOp::And, 8, X0, X0, K);
      E.ret();
    });
    EXPECT_EQ(R.call({0xA5A5A5A5A5A5A5A5ull}), 0xA5A5A5A5A5A5A5A5ull & K);
  }
}

TEST(A64Sim, ShiftSemantics) {
  SimRun R([](Emitter &E, Sim &) {
    E.shiftRI(ShiftOp::Lsl, 8, X2, X0, 4);
    E.shiftRI(ShiftOp::Lsr, 8, X3, X0, 8);
    E.shiftRI(ShiftOp::Asr, 8, X4, X0, 8);
    E.addRRR(8, X0, X2, X3);
    E.addRRR(8, X0, X0, X4);
    E.ret();
  });
  u64 V = 0x8000000000001234ull;
  EXPECT_EQ(R.call({V}), (V << 4) + (V >> 8) +
                             static_cast<u64>(static_cast<i64>(V) >> 8));
}

TEST(A64Sim, VarShiftAndExtr) {
  SimRun R([](Emitter &E, Sim &) {
    E.shiftRRR(ShiftOp::Lsr, 8, X2, X0, X1); // x2 = a >> b
    E.extrRRI(8, X3, X0, X0, 8);             // x3 = ror(a, 8)
    E.addRRR(8, X0, X2, X3);
    E.ret();
  });
  u64 A = 0x1122334455667788ull;
  u64 Ror = (A >> 8) | (A << 56);
  EXPECT_EQ(R.call({A, 16}), (A >> 16) + Ror);
}

TEST(A64Sim, DivisionEdgeCases) {
  SimRun R([](Emitter &E, Sim &) {
    E.sdivRRR(8, X0, X0, X1);
    E.ret();
  });
  EXPECT_EQ(R.call({100, 7}), static_cast<u64>(100 / 7));
  EXPECT_EQ(R.call({static_cast<u64>(-100), 7}),
            static_cast<u64>(i64(-100) / 7));
  EXPECT_EQ(R.call({100, 0}), 0u); // A64 divide-by-zero yields 0
  EXPECT_EQ(R.call({0x8000000000000000ull, static_cast<u64>(-1)}),
            0x8000000000000000ull); // overflow case
}

TEST(A64Sim, CompareAndCset) {
  SimRun R([](Emitter &E, Sim &) {
    E.cmpRR(8, X0, X1);
    E.cset(X0, Cond::LT);
    E.ret();
  });
  EXPECT_EQ(R.call({1, 2}), 1u);
  EXPECT_EQ(R.call({2, 1}), 0u);
  EXPECT_EQ(R.call({static_cast<u64>(-5), 3}), 1u);
}

TEST(A64Sim, I128AddCarryChain) {
  // (x0:x1) + (x2:x3) -> x0 = lo, x1 = hi.
  SimRun R([](Emitter &E, Sim &) {
    E.addRRR(8, X0, X0, X2, /*SetFlags=*/true);
    E.adcsRRR(8, X1, X1, X3);
    E.ret();
  });
  R.S.X[0] = ~0ull;
  R.S.X[1] = 1;
  R.S.X[2] = 1;
  R.S.X[3] = 2;
  R.S.X[30] = 0;
  R.call({~0ull, 1, 1, 2});
  EXPECT_EQ(R.S.X[0], 0u);
  EXPECT_EQ(R.S.X[1], 4u); // 1 + 2 + carry
}

TEST(A64Sim, LoadStoreRoundTrip) {
  SimRun R([](Emitter &E, Sim &) {
    E.subRI(8, SP, SP, 32);
    E.str(8, Mem(SP, 8), X0);
    E.ldr(8, X1, Mem(SP, 8));
    E.str(1, Mem(SP), X0);
    E.ldr(1, X2, Mem(SP));
    E.ldrSext(1, X3, Mem(SP));
    E.addRI(8, SP, SP, 32);
    E.addRRR(8, X0, X1, X2);
    E.addRRR(8, X0, X0, X3);
    E.ret();
  });
  u64 V = 0xFFFFFFFFFFFFFF80ull; // low byte 0x80
  EXPECT_EQ(R.call({V}), V + 0x80 + static_cast<u64>(i64(-128)));
}

TEST(A64Sim, BranchesAndLoops) {
  // Sum 1..n via a loop.
  SimRun R([](Emitter &E, Sim &) {
    asmx::Label Loop = E.assembler().makeLabel();
    asmx::Label Done = E.assembler().makeLabel();
    E.movRI(X1, 0);
    E.assembler().bindLabel(Loop);
    E.cmpRI(8, X0, 0);
    E.bcondLabel(Cond::EQ, Done);
    E.addRRR(8, X1, X1, X0);
    E.subRI(8, X0, X0, 1);
    E.bLabel(Loop);
    E.assembler().bindLabel(Done);
    E.movRR(8, X0, X1);
    E.ret();
  });
  EXPECT_EQ(R.call({10}), 55u);
  EXPECT_EQ(R.call({0}), 0u);
  EXPECT_EQ(R.call({1000}), 500500u);
}

TEST(A64Sim, FloatingPoint) {
  SimRun R([](Emitter &E, Sim &) {
    E.fpArith(FpOp::Mul, 8, V0, V0, V1);
    E.fpArith(FpOp::Add, 8, V0, V0, V1);
    E.ret();
  });
  double A = 2.5, B = 4.0;
  u64 ABits, BBits;
  memcpy(&ABits, &A, 8);
  memcpy(&BBits, &B, 8);
  R.call({ABits, BBits}, {true, true});
  EXPECT_DOUBLE_EQ(R.S.d(0), 2.5 * 4.0 + 4.0);
}

TEST(A64Sim, FpCompareUnordered) {
  SimRun R([](Emitter &E, Sim &) {
    E.fpCmp(8, V0, V1);
    E.cset(X0, Cond::MI); // olt
    E.ret();
  });
  double NaN = __builtin_nan("");
  u64 NaNBits, OneBits;
  memcpy(&NaNBits, &NaN, 8);
  double One = 1.0;
  memcpy(&OneBits, &One, 8);
  EXPECT_EQ(R.call({NaNBits, OneBits}, {true, true}), 0u);
  double Half = 0.5;
  u64 HalfBits;
  memcpy(&HalfBits, &Half, 8);
  EXPECT_EQ(R.call({HalfBits, OneBits}, {true, true}), 1u);
}

TEST(A64Sim, ConvertIntFp) {
  SimRun R([](Emitter &E, Sim &) {
    E.cvtSiToFp(8, 8, V0, X0); // scvtf d0, x0
    E.fpArith(FpOp::Add, 8, V0, V0, V0);
    E.cvtFpToSi(8, 8, X0, V0); // fcvtzs x0, d0
    E.ret();
  });
  EXPECT_EQ(R.call({21}), 42u);
  EXPECT_EQ(R.call({static_cast<u64>(-21)}), static_cast<u64>(-42));
}

TEST(A64Sim, HostCallBridge) {
  SimRun R([](Emitter &E, Sim &S) {
    S.registerHost("ext_mul3", [](Sim &Sim) { Sim.X[0] = Sim.X[0] * 3; });
    // Call ext_mul3(x0 + 1).
    E.stpPre(FP, LR, SP, -16);
    E.addRI(8, X0, X0, 1);
    E.blSym(E.assembler().getOrCreateSymbol("ext_mul3"));
    E.addRI(8, X0, X0, 100);
    E.ldpPost(FP, LR, SP, 16);
    E.ret();
  });
  EXPECT_EQ(R.call({5}), (5 + 1) * 3 + 100u);
}

TEST(A64Sim, LargeFrameOffsets) {
  // Frame offsets beyond the 9-bit LDUR range go through X16.
  SimRun R([](Emitter &E, Sim &) {
    E.subRI(8, SP, SP, 4096);
    E.str(8, Mem(SP, 3000), X0);
    E.movRI(X0, 0);
    E.ldr(8, X0, Mem(SP, 3000));
    E.movSP(X1, SP);
    E.str(8, Mem(X1, -513), X0); // negative out-of-range -> X16 path
    E.ldr(8, X2, Mem(X1, -513));
    E.addRRR(8, X0, X0, X2);
    E.addRI(8, SP, SP, 4096);
    E.ret();
  });
  EXPECT_EQ(R.call({7}), 14u);
}

TEST(A64Sim, Uxtb32BitOps) {
  SimRun R([](Emitter &E, Sim &) {
    E.uxtb(X1, X0);
    E.sxtb(X2, X0);
    E.addRRR(4, X0, X1, X2); // 32-bit add zero-extends result
    E.ret();
  });
  u64 V = 0xFFFFFFFFFFFFFF80ull;
  u64 Expect = (0x80 + static_cast<u64>(i64(-128))) & 0xFFFFFFFFull;
  EXPECT_EQ(R.call({V}), Expect);
}

TEST(A64Sim, CselSemantics) {
  SimRun R([](Emitter &E, Sim &) {
    E.cmpRI(8, X0, 10);
    E.csel(8, X0, X1, X2, Cond::LO);
    E.ret();
  });
  EXPECT_EQ(R.call({5, 111, 222}), 111u);
  EXPECT_EQ(R.call({15, 111, 222}), 222u);
}

TEST(A64Sim, GlobalAddressing) {
  // leaSym/ADRP against a data symbol, then load through it.
  asmx::Assembler Asm;
  Emitter E(Asm);
  asmx::SymRef G = Asm.createSymbol("gvar", asmx::Linkage::Internal, false);
  asmx::Section &D = Asm.section(asmx::SecKind::Data);
  u64 Off = D.size();
  D.appendLE<u64>(0xCAFEBABEull);
  Asm.defineSymbol(G, asmx::SecKind::Data, Off, 8);
  asmx::SymRef F = Asm.createSymbol("f", asmx::Linkage::External, true);
  Asm.defineSymbol(F, asmx::SecKind::Text, 0, 0);
  E.leaSym(X1, G);
  E.ldr(8, X0, Mem(X1));
  E.ret();

  Sim S;
  SimModule Mod;
  ASSERT_TRUE(Mod.map(Asm, S));
  EXPECT_EQ(S.call(Mod.address("f")), 0xCAFEBABEull);
}

} // namespace
