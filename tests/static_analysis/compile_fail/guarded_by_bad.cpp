// Seeded GUARDED_BY violation: this TU must NOT compile under
// -Wthread-safety -Werror. run_compile_fail.py treats a successful
// compile of this file as a broken gate (hard failure, never skipped).
#include "support/Sync.h"

struct Counter {
  tpde::Mutex M;
  int X TPDE_GUARDED_BY(M) = 0;
  int readUnlocked() { return X; } // BAD: reads X without holding M
};

int main() {
  Counter C;
  return C.readUnlocked();
}
