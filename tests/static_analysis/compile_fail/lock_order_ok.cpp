// Control for lock_order_bad.cpp: the documented ClaimsMtx-before-Cache
// order must compile cleanly even under -Wthread-safety-beta.
#include "support/Sync.h"

struct ServiceShape {
  tpde::Mutex CacheMtx;
  tpde::Mutex ClaimsMtx TPDE_ACQUIRED_BEFORE(CacheMtx);

  void ordered() {
    tpde::LockGuard A(ClaimsMtx);
    tpde::LockGuard B(CacheMtx);
  }
};

int main() {
  ServiceShape S;
  S.ordered();
  return 0;
}
