// Seeded lock-order inversion, mirroring the service's documented order
// (service/CompileService.h: ClaimsMtx strictly before Cache.Mtx). Must
// NOT compile when the toolchain enforces acquired_before — clang's
// -Wthread-safety-beta; run_compile_fail.py probes for support first.
// Debug builds assert the same order at runtime via LockRank
// (support/Sync.h), so GCC keeps a dynamic backstop for this invariant.
#include "support/Sync.h"

struct ServiceShape {
  tpde::Mutex CacheMtx;
  tpde::Mutex ClaimsMtx TPDE_ACQUIRED_BEFORE(CacheMtx);

  void inverted() {
    tpde::LockGuard A(CacheMtx);
    tpde::LockGuard B(ClaimsMtx); // BAD: cache lock taken first
  }
};

int main() {
  ServiceShape S;
  S.inverted();
  return 0;
}
