// Control for guarded_by_bad.cpp: the same shapes, correctly locked,
// must compile cleanly — including the patterns the wrappers exist for:
// the explicit while-loop CV wait and the UniqueLock release/relock.
#include "support/Sync.h"

struct Counter {
  tpde::Mutex M;
  tpde::CondVar CV;
  int X TPDE_GUARDED_BY(M) = 0;

  int readLocked() TPDE_EXCLUDES(M) {
    tpde::LockGuard L(M);
    return X;
  }
  void waitNonZero() TPDE_EXCLUDES(M) {
    tpde::LockGuard L(M);
    while (X == 0)
      CV.wait(M);
  }
  void relock() TPDE_EXCLUDES(M) {
    tpde::UniqueLock L(M);
    ++X;
    L.unlock();
    L.lock();
    ++X;
  }
};

int main() {
  Counter C;
  C.relock();
  return C.readLocked();
}
