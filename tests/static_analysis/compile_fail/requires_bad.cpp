// Seeded REQUIRES violation: calling a *Locked helper without the lock
// must NOT compile under -Wthread-safety -Werror. This is the CodeCache
// evictLocked() convention.
#include "support/Sync.h"

struct Cache {
  tpde::Mutex Mtx;
  int Entries TPDE_GUARDED_BY(Mtx) = 0;
  void evictLocked() TPDE_REQUIRES(Mtx) { --Entries; }
  void evictUnlocked() { evictLocked(); } // BAD: Mtx not held
};

int main() {
  Cache C;
  C.evictUnlocked();
  return 0;
}
