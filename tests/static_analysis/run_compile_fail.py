#!/usr/bin/env python3
"""run_compile_fail.py - negative tests for the thread-safety gate.

Proves the gate actually gates: each *_bad.cpp TU under compile_fail/
must FAIL to compile with the expected diagnostic, and each *_ok.cpp
control must compile cleanly with the same flags. A bad TU that compiles
means the gate is dead (annotations inert, flags dropped) — hard failure.

Two flag tiers:
  -Wthread-safety          guarded_by / requires violations. Supported by
                           every clang this project builds with; the
                           guarded_by_bad.cpp canary is REQUIRED to fail,
                           otherwise this harness exits 1.
  -Wthread-safety-beta     acquired_before/after lock-order checks. Probed
                           first (order_probe written in-memory); when the
                           toolchain does not enforce ordering the two
                           lock_order TUs are reported SKIPPED instead of
                           failing CI on an older clang. Debug builds
                           assert the same order at runtime via LockRank
                           (support/Sync.h), so the invariant is never
                           entirely un-checked.

Also re-proves the unwrapped-mutex gate end to end: scripts/tpde_lint.py
must reject the raw_sync_bad fixture (exit 1) and pass the real tree.

Usage: run_compile_fail.py --cxx clang++ --root <repo>
Exit: 0 gate works, 1 gate broken, 2 usage error (incl. non-clang cxx).
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

ORDER_PROBE = """
#include "support/Sync.h"
struct P {
  tpde::Mutex B;
  tpde::Mutex A TPDE_ACQUIRED_BEFORE(B);
  void inverted() {
    tpde::LockGuard LB(B);
    tpde::LockGuard LA(A);
  }
};
int main() { P p; p.inverted(); return 0; }
"""

BASE = ["-std=c++20", "-fsyntax-only", "-Wthread-safety", "-Werror"]
BETA = BASE + ["-Wthread-safety-beta"]

# TU name -> (flags, must_fail, required diagnostic substring when failing)
CASES = {
    "guarded_by_bad.cpp": (BASE, True, "requires holding"),
    "guarded_by_ok.cpp": (BASE, False, ""),
    "requires_bad.cpp": (BASE, True, "requires holding"),
    "lock_order_bad.cpp": (BETA, True, "before"),
    "lock_order_ok.cpp": (BETA, False, ""),
}


def compile_tu(cxx, flags, src_dir, tu):
    cmd = [cxx] + flags + ["-I", str(src_dir), str(tu)]
    return subprocess.run(cmd, capture_output=True, text=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cxx", required=True)
    ap.add_argument("--root", default=".")
    args = ap.parse_args()
    root = Path(args.root).resolve()
    src_dir = root / "src"
    case_dir = root / "tests" / "static_analysis" / "compile_fail"

    ver = subprocess.run([args.cxx, "--version"], capture_output=True,
                         text=True)
    if "clang" not in ver.stdout.lower():
        print(f"run_compile_fail: {args.cxx} is not clang; the thread-safety "
              "gate is clang-only", file=sys.stderr)
        return 2

    # Probe whether this clang enforces acquired_before at all.
    with tempfile.TemporaryDirectory() as td:
        probe = Path(td) / "order_probe.cpp"
        probe.write_text(ORDER_PROBE)
        order_checked = compile_tu(args.cxx, BETA, src_dir,
                                   probe).returncode != 0

    failures = 0
    for name, (flags, must_fail, needle) in sorted(CASES.items()):
        tu = case_dir / name
        if flags is BETA and must_fail and not order_checked:
            print(f"SKIP {name}: this clang does not enforce "
                  "acquired_before (runtime LockRank assert still covers it)")
            continue
        proc = compile_tu(args.cxx, flags, src_dir, tu)
        failed = proc.returncode != 0
        if failed != must_fail:
            verdict = "compiled but must fail" if must_fail else \
                      "failed but must compile"
            print(f"FAIL {name}: {verdict}\n{proc.stderr}", file=sys.stderr)
            failures += 1
        elif must_fail and needle not in proc.stderr:
            print(f"FAIL {name}: failed without the expected diagnostic "
                  f"('{needle}')\n{proc.stderr}", file=sys.stderr)
            failures += 1
        else:
            print(f"OK   {name}")

    # The unwrapped-std::mutex gate is the linter; prove it end to end.
    lint = root / "scripts" / "tpde_lint.py"
    proc = subprocess.run([sys.executable, str(lint), "--self-test",
                          "--root", str(root)], capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"FAIL tpde_lint --self-test:\n{proc.stderr}", file=sys.stderr)
        failures += 1
    else:
        print("OK   tpde_lint --self-test (raw std::mutex rejected)")

    if failures:
        print(f"run_compile_fail: {failures} gate failure(s)", file=sys.stderr)
        return 1
    print("run_compile_fail: the gate rejects every seeded violation")
    return 0


if __name__ == "__main__":
    sys.exit(main())
