// Known-bad fixture: raw std primitives outside support/Sync.h.
// tpde-lint-expect: raw-sync
#include <mutex>
#include <thread>

struct Unwrapped {
  std::mutex M;
  int X = 0;
  void bump() {
    std::lock_guard<std::mutex> L(M);
    ++X;
  }
};

void spawn() {
  std::thread T([] {});
  T.join();
}
