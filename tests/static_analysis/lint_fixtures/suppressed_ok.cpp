// Known-good fixture: every violation carries a named suppression, so the
// file must report nothing. Suppressions name their rule to stay greppable.
// tpde-lint: hot-path

#include <vector> // tpde-lint: allow(hot-path-alloc)

struct Quarantine {
  // tpde-lint: allow(hot-path-alloc)
  std::vector<int> Failed; // cold path: only grows on compile failure
};

int legacySeed() {
  return rand(); // tpde-lint: allow(banned-api)
}
