// Known-good fixture: a hot-path file obeying every rule. Comments and
// strings mentioning std::mutex, rand(), or new must NOT be flagged —
// matching runs on stripped text.
// tpde-lint: hot-path

// A comment may discuss std::mutex or new allocations freely.
const char *Doc = "prefer tpde::Mutex over std::mutex; never call rand()";

struct Encoder {
  static constexpr unsigned BufWords = 16;
  unsigned Buf[BufWords] = {};
  unsigned Cursor = 0;

  void emit(unsigned Word) {
    static_assert(BufWords > 0, "buffer must hold at least one word");
    static constexpr unsigned Mask = BufWords - 1; // compile-time: allowed
    Buf[Cursor & Mask] = Word;
    ++Cursor;
  }
};
