// Known-bad fixture: allocation in a file claiming the zero-alloc policy.
// tpde-lint: hot-path
// tpde-lint-expect: hot-path-alloc
#include <string>
#include <vector>

struct Emitter {
  std::vector<int> Offsets; // allocating container in a hot-path file
  void emit() {
    int *Scratch = new int[64];
    std::string Name = "f";
    (void)Name;
    delete[] Scratch;
  }
};
