// Known-bad fixture: mutable function-local static (the PR 1 copypatch
// bug class) and a function-local thread_local.
// tpde-lint-expect: local-static

int nextId() {
  static int Counter = 0; // hidden cross-compile state
  return ++Counter;
}

int scratch() {
  thread_local int Buf[16];
  return Buf[0];
}
