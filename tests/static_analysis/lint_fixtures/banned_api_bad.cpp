// Known-bad fixture: nondeterministic randomness and a timed sleep used
// as synchronization outside the service layer.
// tpde-lint-expect: banned-api
#include <chrono>
#include <cstdlib>

unsigned jitter() {
  return static_cast<unsigned>(rand());
}

void settle() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
