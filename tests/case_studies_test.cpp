//===- tests/case_studies_test.cpp - Wasm and UIR case-study tests --------===//
///
/// End-to-end checks for the §6 (wasm) and §7 (database IR) case studies:
/// every back-end must produce identical results, and the wasm translation
/// must produce verifier-clean TIR.
///
//===----------------------------------------------------------------------===//

#include "asmx/JITMapper.h"
#include "baseline/Baseline.h"
#include "tir/Verifier.h"
#include "tpde_tir/TirCompilerX64.h"
#include "uir/TpdeUir.h"
#include "wasm/Workloads.h"

#include <gtest/gtest.h>

using namespace tpde;

namespace {

u64 runWasm(const wasm::WModule &W, int Backend) {
  asmx::Assembler Asm;
  bool OK = false;
  if (Backend == 0) {
    OK = wasm::compileWinch(W, Asm);
  } else {
    tir::Module M;
    OK = wasm::translateToTir(W, M);
    EXPECT_TRUE(OK);
    std::string Err;
    EXPECT_TRUE(tir::verifyModule(M, Err)) << Err;
    if (Backend == 1)
      OK = tpde_tir::compileModuleX64(M, Asm);
    else if (Backend == 2)
      OK = baseline::compileModule(M, Asm, baseline::OptLevel::O0);
    else
      OK = baseline::compileModule(M, Asm, baseline::OptLevel::O1);
  }
  EXPECT_TRUE(OK);
  asmx::JITMapper JIT;
  EXPECT_TRUE(JIT.map(Asm));
  reinterpret_cast<void (*)()>(JIT.address("init"))();
  return reinterpret_cast<u64 (*)(u64, u64)>(JIT.address("kernel"))(0, 0);
}

} // namespace

class WasmKernels : public ::testing::TestWithParam<int> {};

TEST_P(WasmKernels, AllBackendsAgree) {
  auto Modules = wasm::wasmBenchModules();
  const auto &NM = Modules[GetParam()];
  u64 Winch = runWasm(NM.Module, 0);
  EXPECT_EQ(runWasm(NM.Module, 1), Winch) << NM.Name << " TPDE";
  EXPECT_EQ(runWasm(NM.Module, 2), Winch) << NM.Name << " baseline-O0";
  EXPECT_EQ(runWasm(NM.Module, 3), Winch) << NM.Name << " baseline-O1";
}

INSTANTIATE_TEST_SUITE_P(All, WasmKernels, ::testing::Range(0, 15),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return std::string("kernel") +
                                  std::to_string(I.param);
                         });

class UirQueries : public ::testing::TestWithParam<int> {};

TEST_P(UirQueries, AllConfigsMatchReference) {
  auto Plans = uir::tpcdsLikePlans();
  const auto &P = Plans[GetParam()];
  uir::Table T(8, 20000, /*Seed=*/GetParam() + 1);
  i64 Expected = uir::evalPlan(P, T);

  auto check = [&](const char *Name, auto Compile) {
    uir::UModule U;
    uir::compilePlan(U, P);
    asmx::Assembler Asm;
    ASSERT_TRUE(Compile(U, Asm)) << Name;
    asmx::JITMapper JIT;
    ASSERT_TRUE(JIT.map(Asm));
    auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        JIT.address(P.Name));
    EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)), Expected)
        << Name;
  };
  check("tpde-uir", [](uir::UModule &U, asmx::Assembler &A) {
    return uir::compileTpdeUir(U, A);
  });
  check("direct-emit", [](uir::UModule &U, asmx::Assembler &A) {
    return uir::compileDirectEmit(U, A);
  });
  check("uir-to-tir+tpde", [](uir::UModule &U, asmx::Assembler &A) {
    tir::Module M;
    if (!uir::translateToTir(U, M))
      return false;
    std::string Err;
    EXPECT_TRUE(tir::verifyModule(M, Err)) << Err;
    return tpde_tir::compileModuleX64(M, A);
  });
  check("uir-to-tir+o1", [](uir::UModule &U, asmx::Assembler &A) {
    tir::Module M;
    return uir::translateToTir(U, M) &&
           baseline::compileModule(M, A, baseline::OptLevel::O1);
  });
}

INSTANTIATE_TEST_SUITE_P(All, UirQueries, ::testing::Range(0, 20),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return std::string("q") + std::to_string(I.param);
                         });

/// Regression (UirCompilerX64::materializeConstLike): ConstF is marked
/// const-like with an FP-bank metadata byte, so the framework
/// materializes it straight into an XMM register — the old code
/// unconditionally emitted an integer movRI, producing garbage encodings
/// for FP-bank destinations. The plan's f64 threshold is NOT in any
/// block's instruction list: it exists only as a rematerialized
/// constant, so every execution goes through the fixed path (via the
/// rodata FP pool).
TEST(UirFpConst, RematerializedF64ConstantExecutesCorrectly) {
  uir::QueryPlan P;
  P.Name = "fp_pred_query";
  P.Preds = {{1, uir::UOp::CmpLt, 700}};
  P.AggColA = 0;
  P.AggColB = 3;
  P.AggK = 7;
  P.HasFpPred = true;
  P.FpPredCol = 2;
  P.FpK = 421.5;

  uir::Table T(6, 20000, /*Seed=*/9);
  i64 Expected = uir::evalPlan(P, T);

  // Sanity: the FP predicate must actually filter, or a broken compare
  // that always passes would go unnoticed.
  {
    uir::QueryPlan NoFp = P;
    NoFp.HasFpPred = false;
    ASSERT_NE(Expected, uir::evalPlan(NoFp, T));
  }

  auto check = [&](const char *Name, auto Compile) {
    uir::UModule U;
    uir::compilePlan(U, P);
    asmx::Assembler Asm;
    ASSERT_TRUE(Compile(U, Asm)) << Name;
    asmx::JITMapper JIT;
    ASSERT_TRUE(JIT.map(Asm));
    auto *Q = reinterpret_cast<i64 (*)(const i64 *const *, i64)>(
        JIT.address(P.Name));
    EXPECT_EQ(Q(T.ColPtrs.data(), static_cast<i64>(T.Rows)), Expected)
        << Name;
  };
  check("tpde-uir", [](uir::UModule &U, asmx::Assembler &A) {
    return uir::compileTpdeUir(U, A);
  });
  // The translation path must agree (ConstF/I2F/FCmpLt coverage in
  // translateToTir — the old val() rebuilt ConstF as an integer const).
  check("uir-to-tir+tpde", [](uir::UModule &U, asmx::Assembler &A) {
    tir::Module M;
    if (!uir::translateToTir(U, M))
      return false;
    std::string Err;
    EXPECT_TRUE(tir::verifyModule(M, Err)) << Err;
    return tpde_tir::compileModuleX64(M, A);
  });
}
