//===- tests/core_test.cpp - TPDE framework core unit tests ---------------===//
///
/// Unit tests for the framework-internal machinery: the analysis pass
/// (loop identification incl. irreducible CFGs, block layout, coarse
/// liveness), the register file, and the frame allocator.
///
//===----------------------------------------------------------------------===//

#include "core/Analyzer.h"
#include "core/Assignment.h"
#include "core/RegFile.h"
#include "tir/Builder.h"
#include "tpde_tir/TirAdapter.h"
#include "x64/CompilerX64.h"

#include <gtest/gtest.h>

using namespace tpde;
using namespace tpde::core;
using namespace tpde::tir;

namespace {

/// Runs the analyzer over function 0 of \p M.
struct Analyzed {
  tpde_tir::TirAdapter A;
  Analyzer<tpde_tir::TirAdapter> An;
  explicit Analyzed(Module &M) : A(M), An(A) {
    A.switchFunc(0);
    An.analyze();
  }
};

} // namespace

TEST(Analyzer, SimpleLoopIsDetected) {
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), L = B.addBlock(), X = B.addBlock();
  B.setInsertPoint(E);
  B.br(L);
  B.setInsertPoint(L);
  ValRef I = B.phi(Type::I64);
  ValRef I2 = B.binop(Op::Add, I, B.constInt(Type::I64, 1));
  ValRef C = B.icmp(ICmp::Slt, I2, B.arg(0));
  B.condBr(C, L, X);
  B.setInsertPoint(X);
  B.ret(I2);
  B.addPhiIncoming(I, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, L, I2);
  B.finish();

  Analyzed Z(M);
  // Pseudo-root plus the real loop.
  EXPECT_EQ(Z.An.numLoops(), 2u);
  EXPECT_EQ(Z.An.loop(1).Level, 1u);
  // The loop body is one block; its interval is a single layout slot.
  EXPECT_EQ(Z.An.loop(1).Begin, Z.An.loop(1).End);
  // Layout: entry, loop, exit.
  EXPECT_EQ(Z.An.numBlocks(), 3u);
  EXPECT_EQ(Z.An.block(1).Loop, 1u);
  EXPECT_EQ(Z.An.block(0).Loop, 0u);
  EXPECT_EQ(Z.An.block(2).Loop, 0u);
  EXPECT_EQ(Z.An.block(1).NumPreds, 2u);
}

TEST(Analyzer, NestedLoopsGetContiguousLayout) {
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), OH = B.addBlock(), IH = B.addBlock(),
           OL = B.addBlock(), X = B.addBlock();
  B.setInsertPoint(E);
  B.br(OH);
  B.setInsertPoint(OH);
  ValRef I = B.phi(Type::I64);
  B.br(IH);
  B.setInsertPoint(IH);
  ValRef J = B.phi(Type::I64);
  ValRef J2 = B.binop(Op::Add, J, B.constInt(Type::I64, 1));
  ValRef CI = B.icmp(ICmp::Slt, J2, B.arg(0));
  B.condBr(CI, IH, OL);
  B.setInsertPoint(OL);
  ValRef I2 = B.binop(Op::Add, I, J2);
  ValRef CO = B.icmp(ICmp::Slt, I2, B.arg(0));
  B.condBr(CO, OH, X);
  B.setInsertPoint(X);
  B.ret(I2);
  B.addPhiIncoming(I, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, OL, I2);
  B.addPhiIncoming(J, OH, B.constInt(Type::I64, 0));
  B.addPhiIncoming(J, IH, J2);
  B.finish();

  Analyzed Z(M);
  ASSERT_EQ(Z.An.numLoops(), 3u);
  // Inner loop nested in outer: levels 1 and 2, intervals nested.
  u32 Outer = 0, Inner = 0;
  for (u32 L = 1; L < 3; ++L)
    (Z.An.loop(L).Level == 1 ? Outer : Inner) = L;
  ASSERT_NE(Outer, 0u);
  ASSERT_NE(Inner, 0u);
  EXPECT_EQ(Z.An.loop(Inner).Level, 2u);
  EXPECT_LE(Z.An.loop(Outer).Begin, Z.An.loop(Inner).Begin);
  EXPECT_GE(Z.An.loop(Outer).End, Z.An.loop(Inner).End);
}

TEST(Analyzer, IrreducibleCfgDoesNotCrash) {
  // Two blocks jumping into each other with two entries (irreducible).
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), A1 = B.addBlock(), A2 = B.addBlock(),
           X = B.addBlock();
  B.setInsertPoint(E);
  ValRef C = B.icmp(ICmp::Eq, B.arg(0), B.constInt(Type::I64, 0));
  B.condBr(C, A1, A2);
  B.setInsertPoint(A1);
  ValRef C1 = B.icmp(ICmp::Slt, B.arg(0), B.constInt(Type::I64, 10));
  B.condBr(C1, A2, X);
  B.setInsertPoint(A2);
  ValRef C2 = B.icmp(ICmp::Sgt, B.arg(0), B.constInt(Type::I64, -10));
  B.condBr(C2, A1, X);
  B.setInsertPoint(X);
  B.ret(B.arg(0));
  B.finish();

  Analyzed Z(M);
  EXPECT_EQ(Z.An.numBlocks(), 4u);
  // A loop must have been identified despite irreducibility.
  EXPECT_GE(Z.An.numLoops(), 2u);
}

TEST(Analyzer, UnreachableBlocksAreDropped) {
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {});
  BlockRef E = B.addBlock(), Dead = B.addBlock();
  B.setInsertPoint(E);
  B.ret(B.constInt(Type::I64, 1));
  B.setInsertPoint(Dead);
  B.ret(B.constInt(Type::I64, 2));
  B.finish();
  Analyzed Z(M);
  EXPECT_EQ(Z.An.numBlocks(), 1u);
}

TEST(Analyzer, LivenessExtendsAcrossLoops) {
  // A value defined before a loop and used inside must be live through
  // the whole loop (LastFull).
  Module M;
  FunctionBuilder B(M, "f", Type::I64, {Type::I64});
  BlockRef E = B.addBlock(), L = B.addBlock(), X = B.addBlock();
  B.setInsertPoint(E);
  ValRef Pre = B.binop(Op::Add, B.arg(0), B.constInt(Type::I64, 3));
  B.br(L);
  B.setInsertPoint(L);
  ValRef I = B.phi(Type::I64);
  ValRef I2 = B.binop(Op::Add, I, Pre); // use inside the loop
  ValRef C = B.icmp(ICmp::Slt, I2, B.constInt(Type::I64, 100));
  B.condBr(C, L, X);
  B.setInsertPoint(X);
  B.ret(I2);
  B.addPhiIncoming(I, E, B.constInt(Type::I64, 0));
  B.addPhiIncoming(I, L, I2);
  B.finish();

  Analyzed Z(M);
  const auto &LR = Z.An.liveness(Pre);
  EXPECT_EQ(LR.First, 0u);
  EXPECT_EQ(LR.Last, 1u); // end of the loop block
  EXPECT_TRUE(LR.LastFull);
  // Phi liveness must cover the back edge too.
  const auto &PhiLR = Z.An.liveness(I);
  EXPECT_TRUE(PhiLR.LastFull);
}

// --- Register file -----------------------------------------------------------

TEST(RegFile, AllocateLockEvict) {
  RegFile<x64::X64Config> R;
  R.reset();
  Reg A = R.findFree(0);
  ASSERT_TRUE(A.isValid());
  EXPECT_EQ(A.Id, 0); // rax is the lowest allocatable
  R.markUsed(A, 7, 0);
  EXPECT_TRUE(R.isUsed(A));
  EXPECT_EQ(R.ownerVal(A), 7u);
  R.lock(A);
  // The locked register is not an eviction candidate.
  for (int I = 0; I < 20; ++I) {
    Reg C = R.pickEvictionCandidate(0);
    EXPECT_FALSE(C.isValid() && C == A);
    if (C.isValid())
      break;
  }
  R.unlock(A);
  R.markFree(A);
  EXPECT_FALSE(R.isUsed(A));
}

TEST(RegFile, RspRbpNeverAllocatable) {
  RegFile<x64::X64Config> R;
  R.reset();
  std::vector<u8> Got;
  for (;;) {
    Reg F = R.findFree(0);
    if (!F.isValid())
      break;
    Got.push_back(F.Id);
    R.markUsed(F, 1, 0);
  }
  EXPECT_EQ(Got.size(), 14u); // 16 GP minus rsp/rbp
  for (u8 Id : Got) {
    EXPECT_NE(Id, 4); // rsp
    EXPECT_NE(Id, 5); // rbp
  }
}

TEST(RegFile, RoundRobinEviction) {
  RegFile<x64::X64Config> R;
  R.reset();
  for (;;) {
    Reg F = R.findFree(0);
    if (!F.isValid())
      break;
    R.markUsed(F, F.Id, 0);
  }
  Reg C1 = R.pickEvictionCandidate(0);
  R.markFree(C1);
  R.markUsed(C1, 99, 0);
  Reg C2 = R.pickEvictionCandidate(0);
  EXPECT_FALSE(C1 == C2) << "round robin should rotate";
}

// --- Frame allocator -----------------------------------------------------------

TEST(FrameAllocator, BumpAndReuse) {
  FrameAllocator F;
  F.reset(-40);
  i32 S1 = F.alloc(8);
  i32 S2 = F.alloc(8);
  EXPECT_EQ(S1, -48);
  EXPECT_EQ(S2, -56);
  F.release(S1, 8);
  EXPECT_EQ(F.alloc(8), S1); // reused
  i32 W = F.alloc(16);
  EXPECT_EQ(W, -72);
  F.release(W, 16);
  EXPECT_EQ(F.alloc(16), W);
  // Positive offsets (incoming stack args) are never recycled.
  F.release(16, 8);
  EXPECT_EQ(F.alloc(8), -80);
  EXPECT_EQ(F.lowWaterMark(), -80);
}

TEST(FrameAllocator, SeparateSizeClasses) {
  FrameAllocator F;
  F.reset(0);
  i32 S8 = F.alloc(8);
  F.release(S8, 8);
  // A 16-byte request must not reuse the 8-byte slot.
  i32 S16 = F.alloc(16);
  EXPECT_NE(S16, S8);
}
