#!/usr/bin/env python3
"""check_header_standalone.py - header self-sufficiency gate.

Every header under src/ must compile on its own: for each src/**/*.h a
one-line TU (`#include "<header>"`) is syntax-checked with -I src. A
header that only compiles because its usual includer happened to pull in
its dependencies first rots silently until someone reorders includes;
this check (run as a ctest and in the CI static-analysis job) catches
the missing include at the PR that introduces it.

Usage: check_header_standalone.py --root <repo> [--cxx <compiler>]
                                  [--jobs N] [--std c++20]

Exit status: 0 all headers standalone, 1 failures (each reported with the
compiler's own diagnostics), 2 usage/environment error.
"""

import argparse
import concurrent.futures
import subprocess
import sys
import tempfile
from pathlib import Path


def check_one(cxx, std, src_dir, header, tmpdir):
    rel = header.relative_to(src_dir)
    tu = Path(tmpdir) / (str(rel).replace("/", "_") + ".cpp")
    tu.write_text(f'#include "{rel}"\n')
    cmd = [cxx, f"-std={std}", "-fsyntax-only", "-I", str(src_dir),
           "-Wall", "-Wextra", "-Wno-unused-parameter", str(tu)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return rel, proc.returncode, proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--cxx", default="c++", help="compiler to syntax-check with")
    ap.add_argument("--std", default="c++20")
    ap.add_argument("--jobs", type=int, default=0, help="0 = cpu count")
    args = ap.parse_args()

    src_dir = (Path(args.root) / "src").resolve()
    if not src_dir.is_dir():
        print(f"check_header_standalone: no src/ under {args.root}",
              file=sys.stderr)
        return 2
    headers = sorted(src_dir.rglob("*.h"))
    if not headers:
        print("check_header_standalone: no headers found", file=sys.stderr)
        return 2

    failures = []
    with tempfile.TemporaryDirectory() as tmpdir:
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=args.jobs or None) as ex:
            futs = [ex.submit(check_one, args.cxx, args.std, src_dir, h, tmpdir)
                    for h in headers]
            for fut in concurrent.futures.as_completed(futs):
                rel, rc, err = fut.result()
                if rc != 0:
                    failures.append((rel, err))

    for rel, err in sorted(failures):
        print(f"NOT STANDALONE: src/{rel}\n{err}", file=sys.stderr)
    if failures:
        print(f"check_header_standalone: {len(failures)} of {len(headers)} "
              "headers failed", file=sys.stderr)
        return 1
    print(f"check_header_standalone: all {len(headers)} headers OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
