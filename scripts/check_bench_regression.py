#!/usr/bin/env python3
"""Benchmark-regression gate for compile_throughput.

Compares a freshly measured BENCH_compile_throughput.json against the
committed baseline and fails (exit 1) when any scenario's mean throughput
undercuts the baseline by more than a noise threshold derived from the
reported dispersion:

    allowed_drop = max(SIGMas * sqrt(base_std^2 + new_std^2),
                       REL_FLOOR * base_mean)

The stddev term adapts to how noisy the two runs actually were; the
relative floor keeps one lucky ultra-tight pair of runs from turning
ordinary scheduler jitter into a CI failure (shared runners easily move
by double-digit percents between jobs). Scenarios present in only one of
the two files are tolerated either way: a row only in the baseline is
skipped (a backend was removed), and a row only in the candidate is
WARNED about but never fails the gate — a new bench scenario can land
in the same PR as its first baseline without a chicken-and-egg dance.

Per-row thresholds can be tightened or loosened via ROW_OVERRIDES below
(keyed by (backend, scenario, threads)); unlisted rows use the
command-line --sigmas/--rel-floor defaults. Use it for rows with a known
different noise profile (e.g. wall-clock parallel rows on oversubscribed
runners) instead of widening the global floor.

With --normalize, both runs are first rescaled by their own
Baseline-O0/fresh mean before comparing. That anchor measures the
machine's single-thread compile speed with a backend whose code rarely
changes, so the gate then checks *relative* throughput (TPDE vs the
baseline backend on the same box) and stays meaningful when the
baseline json was recorded on different hardware than the CI runner —
which is exactly the committed-baseline-vs-shared-runner situation.
The tradeoff: a regression that slows every backend equally (e.g. in
asmx) shrinks the anchor too and is masked; refresh the baseline on the
runner class and drop --normalize to regain absolute sensitivity.

Optionally (--require-speedup X) asserts the parallel-scaling acceptance
criterion: mean(parallel, 4 threads) >= X * mean(parallel, 1 thread),
checked only when the measuring machine reported >= 4 hardware threads —
on smaller machines a 4-thread speedup is not reachable and the check is
skipped with a notice.

Two further always-on checks guard the zero-merge (two-pass) emission
path: every parallel@1 row must report emit_mode "in_place" in addition
to zero steady-state allocations (a run silently measured on the
copy-merge fallback is not a valid sample of the production path), and
on machines with >= 4 hardware threads parallel_large@4 must be at least
as fast as fresh_large per backend — the serial remainder of the merge
(reserve + stitch) must never eat the scaling win.

Service mode (--service) gates BENCH_service_throughput.json instead —
the compile-service bench (docs/SERVICE.md). Its acceptance criteria are
mostly *absolute*, so they hold on any hardware without a baseline:

    hit_ratio       >= --min-hit-ratio   (default 0.90)
    hit_speedup_p50 >= --min-hit-speedup (default 10.0)
    failed          == 0
    fault_injection == false             (same hygiene rule as above)

plus a relative p99-latency check against the committed baseline: the
hit and miss p99s may grow to at most (1 + --latency-floor) x baseline
(default floor 2.0, i.e. 3x). The floor is deliberately generous —
latency tails on shared runners move far more than throughput means, and
the absolute hit-speedup gate already catches a hit path that stopped
being cheap; the relative check only guards against order-of-magnitude
cliffs (a lock added on the hit path, a histogram unit bug).

The candidate's "overload" section (the bench's 2x-capacity phase, see
bench/service_throughput.cpp) is gated absolutely:

    hung         == 0   (every job completed without a client wait)
    other_failed == 0   (every shed is labelled Overloaded or
                         DeadlineExceeded — nothing fails ad hoc)
    shed_rate    >  0   (a 2x-overloaded service that sheds nothing is
                         not applying back-pressure; its queue lies)

A candidate without the section is tolerated with a WARN while older
bench binaries are still in circulation; the committed baseline carries
it, so the WARN disappears once the candidate is rebuilt.

Usage:
    check_bench_regression.py BASELINE.json NEW.json
        [--sigmas=4] [--rel-floor=0.30] [--normalize]
        [--require-speedup=1.5]
    check_bench_regression.py --service BASELINE_SERVICE.json NEW_SERVICE.json
        [--min-hit-ratio=0.9] [--min-hit-speedup=10] [--latency-floor=2.0]
"""

import json
import math
import sys

# Per-row threshold overrides: (backend, scenario, threads) -> dict with
# any of "sigmas" / "rel_floor". Rows not listed use the command-line
# values. The parallel rows are wall-clock measurements, so on shared CI
# runners they see scheduler noise the CPU-time rows do not; the
# oversubscribed thread counts (8 threads on a 2-core runner) are the
# worst case and get a wider floor.
ROW_OVERRIDES = {
    ("TPDE", "parallel", 8): {"rel_floor": 0.40},
    ("TPDE-A64", "parallel", 8): {"rel_floor": 0.40},
    ("TPDE-UIR", "parallel", 8): {"rel_floor": 0.40},
    ("TPDE", "parallel_large", 8): {"rel_floor": 0.40},
    ("TPDE-A64", "parallel_large", 8): {"rel_floor": 0.40},
    ("TPDE-UIR", "parallel_large", 8): {"rel_floor": 0.40},
    # In-place (two-pass) emission rows: with the serial byte-copy merge
    # gone, the 4-thread wall-clock rows are dominated by the parallel
    # phases and pick up more scheduler noise relative to their (now
    # faster) means — same reasoning as the oversubscribed @8 rows, a
    # notch tighter.
    ("TPDE", "parallel_large", 4): {"rel_floor": 0.35},
    ("TPDE-A64", "parallel_large", 4): {"rel_floor": 0.35},
    ("TPDE-UIR", "parallel_large", 4): {"rel_floor": 0.35},
}


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for r in data.get("results", []):
        key = (r["backend"], r["scenario"], int(r.get("threads", 0)))
        out[key] = r
    return data, out


def service_gate(base_path, new_path, opts):
    with open(base_path) as f:
        base_doc = json.load(f)
    with open(new_path) as f:
        new_doc = json.load(f)
    min_ratio = float(opts.get("min-hit-ratio", 0.90))
    min_speedup = float(opts.get("min-hit-speedup", 10.0))
    latency_floor = float(opts.get("latency-floor", 2.0))

    failed = False
    if new_doc.get("fault_injection", False):
        print("FAIL: candidate service run was built with "
              "TPDE_FAULT_INJECTION=ON")
        failed = True
    if base_doc.get("fault_injection", False):
        print("FAIL: committed service baseline was built with "
              "TPDE_FAULT_INJECTION=ON; re-record it from a default build")
        failed = True

    s = new_doc.get("service", {})
    ratio = float(s.get("hit_ratio", 0.0))
    speedup = float(s.get("hit_speedup_p50", 0.0))
    njobs_failed = int(s.get("failed", -1))
    print(f"hit_ratio       {ratio:.3f}  (>= {min_ratio:.2f} required)")
    print(f"hit_speedup_p50 {speedup:.1f}x (>= {min_speedup:.1f}x required)")
    print(f"failed jobs     {njobs_failed}")
    if ratio < min_ratio:
        print("FAIL: hit ratio below requirement — the content-addressed "
              "cache is not memoizing repeated submissions")
        failed = True
    if speedup < min_speedup:
        print("FAIL: hit speedup below requirement — a cache hit must be "
              "at least an order of magnitude cheaper than a fresh compile")
        failed = True
    if njobs_failed != 0:
        print("FAIL: the service failed jobs (or the 'failed' counter is "
              "missing from the json)")
        failed = True

    ov = new_doc.get("overload")
    if ov is None:
        print("WARN: candidate has no 'overload' section; overload gate "
              "skipped (rebuild the bench to measure it)")
    else:
        hung = int(ov.get("hung", -1))
        other = int(ov.get("other_failed", -1))
        shed_rate = float(ov.get("shed_rate", 0.0))
        served = int(ov.get("served", 0))
        print(f"overload: served {served}  "
              f"shed {int(ov.get('shed_overloaded', 0))}+"
              f"{int(ov.get('shed_deadline', 0))}  "
              f"hung {hung}  other_failed {other}  "
              f"shed_rate {shed_rate:.3f}  "
              f"queue_wait_p99 {int(ov.get('queue_wait_p99_ns', 0))} ns")
        if hung != 0:
            print("FAIL: overloaded service left jobs hanging (or the "
                  "'hung' counter is missing) — liveness is broken")
            failed = True
        if other != 0:
            print("FAIL: overload sheds must be labelled Overloaded or "
                  "DeadlineExceeded; other error codes (or a missing "
                  "counter) mean unstructured failure under load")
            failed = True
        if shed_rate <= 0.0:
            print("FAIL: a 2x-overloaded service shed nothing — admission "
                  "control is not applying back-pressure")
            failed = True
        if served <= 0:
            print("FAIL: the overloaded service served nothing — shedding "
                  "must not become starvation")
            failed = True

    bs = base_doc.get("service", {})
    for row in ("hit_p99_ns", "miss_p99_ns"):
        b, n = float(bs.get(row, 0)), float(s.get(row, 0))
        if b <= 0 or n <= 0:
            print(f"WARN: {row} missing from baseline or candidate; "
                  f"latency check skipped")
            continue
        allowed = b * (1.0 + latency_floor)
        verdict = "ok"
        if n > allowed:
            verdict = "REGRESSION"
            failed = True
        print(f"{row:<12} base {b:>10.0f}  new {n:>10.0f}  "
              f"allowed {allowed:>10.0f}  {verdict}")

    if failed:
        print("service benchmark gate: FAILED")
        return 1
    print("service benchmark gate: passed")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = {}
    for a in argv[1:]:
        if a.startswith("--"):
            k, _, v = a[2:].partition("=")
            opts[k] = v
    if len(args) != 2:
        print(__doc__)
        return 2
    if "service" in opts:
        return service_gate(args[0], args[1], opts)
    sigmas = float(opts.get("sigmas", 4.0))
    rel_floor = float(opts.get("rel-floor", 0.30))
    require_speedup = float(opts["require-speedup"]) if "require-speedup" in opts else None

    base_doc, base = load(args[0])
    new_doc, new = load(args[1])

    # Fault-injection hygiene: the default build must carry the hooks
    # compiled out (docs/ROBUSTNESS.md). A candidate measured with
    # TPDE_FAULT_INJECTION=ON is not a valid throughput sample — fail
    # fast instead of letting instrumented numbers pass the gate or get
    # committed as a baseline. (Older baselines without the field are
    # treated as uninstrumented.)
    if new_doc.get("fault_injection", False):
        print("FAIL: candidate run was built with TPDE_FAULT_INJECTION=ON; "
              "throughput must be measured with the hooks compiled out")
        return 1
    if base_doc.get("fault_injection", False):
        print("FAIL: committed baseline was built with "
              "TPDE_FAULT_INJECTION=ON; re-record it from a default build")
        return 1

    # Cross-machine normalization: rescale the baseline into the new
    # machine's terms using the Baseline-O0/fresh anchor of each run.
    anchor_key = ("Baseline-O0", "fresh", 0)
    scale = 1.0
    if "normalize" in opts:
        ba, na = base.get(anchor_key), new.get(anchor_key)
        if not ba or not na or ba["funcs_per_sec"] <= 0:
            print("FAIL: --normalize needs the Baseline-O0 fresh anchor "
                  "in both files")
            return 1
        scale = na["funcs_per_sec"] / ba["funcs_per_sec"]
        print(f"normalizing: anchor base {ba['funcs_per_sec']:.0f} -> "
              f"new {na['funcs_per_sec']:.0f} f/s, scale {scale:.3f}")

    failed = False
    print(f"{'backend':<12} {'scenario':<15} {'thr':>3} {'base':>12} "
          f"{'new':>12} {'drop':>8} {'allowed':>8}  verdict")
    for key in sorted(base):
        if key not in new:
            print(f"{key[0]:<12} {key[1]:<15} {key[2]:>3} -- only in baseline, skipped")
            continue
        b, n = base[key], new[key]
        bm, nm = b["funcs_per_sec"] * scale, n["funcs_per_sec"]
        bs = b.get("funcs_per_sec_stddev", 0.0) * scale
        ns = n.get("funcs_per_sec_stddev", 0.0)
        over = ROW_OVERRIDES.get(key, {})
        row_sigmas = over.get("sigmas", sigmas)
        row_floor = over.get("rel_floor", rel_floor)
        allowed = max(row_sigmas * math.sqrt(bs * bs + ns * ns),
                      row_floor * bm)
        drop = bm - nm
        verdict = "ok"
        if key == anchor_key and scale != 1.0:
            verdict = "anchor"  # trivially equal after normalization
        elif drop > allowed:
            verdict = "REGRESSION"
            failed = True
        print(f"{key[0]:<12} {key[1]:<15} {key[2]:>3} {bm:>12.0f} {nm:>12.0f} "
              f"{drop:>8.0f} {allowed:>8.0f}  {verdict}")
    for key in sorted(set(new) - set(base)):
        print(f"WARN: {key[0]:<12} {key[1]:<15} {key[2]:>3} -- new scenario, "
              f"no baseline yet (not gated; lands with this run as its "
              f"first baseline)")

    # Allocation-policy gate: the reused scenarios must stay at zero
    # steady-state allocations (docs/PERF.md) — exact, not noise-bounded,
    # and enforced for both targets of the shared framework, at both
    # module scales: "reused_large" is the >=10k-function steady state
    # that guards the on-demand symbol materialization policy. A missing
    # row is itself a failure: the benchmark always emits both backends,
    # so absence means the measurement silently broke.
    for backend in ("TPDE", "TPDE-A64"):
        for scenario in ("reused", "reused_large"):
            reused = new.get((backend, scenario, 0))
            if not reused:
                print(f"FAIL: {backend} {scenario} row missing from the "
                      f"new run")
                failed = True
            elif reused.get("new_calls_per_func", 0) > 0.001:
                print(f"FAIL: {backend} {scenario} scenario allocates "
                      f"{reused['new_calls_per_func']:.3f} times/function "
                      f"(must be 0; see docs/PERF.md)")
                failed = True
    # Single-worker parallel steady state must be allocation-free too —
    # the one worker visits every shard during warmup, so unlike the
    # multi-worker rows there is no schedule-dependent warmup tail. Like
    # the reused rows, absence is a failure: the benchmark emits a
    # 1-thread row by default, so a missing one means the measurement
    # (or the CI --threads list) silently dropped the gated row. The
    # database back-end (TPDE-UIR) rides the same driver template and is
    # held to the same policy.
    for backend in ("TPDE", "TPDE-A64", "TPDE-UIR"):
        for scenario in ("parallel", "parallel_large"):
            p1 = new.get((backend, scenario, 1))
            if not p1:
                print(f"FAIL: {backend} {scenario}@1 row missing from the "
                      f"new run")
                failed = True
                continue
            if p1.get("new_calls_per_func", 0) > 0.001:
                print(f"FAIL: {backend} {scenario}@1 allocates "
                      f"{p1['new_calls_per_func']:.3f} times/function "
                      f"(must be 0; see docs/PERF.md)")
                failed = True
            # The zero-alloc guarantee must hold on the path production
            # runs: two-pass in-place emission. A row silently measured on
            # the copy-merge fallback (emit_mode "copy") would pass the
            # alloc gate while the in-place scratch (plans, routing,
            # failure flags) regressed unobserved.
            mode = p1.get("emit_mode")
            if mode != "in_place":
                print(f"FAIL: {backend} {scenario}@1 reports emit_mode "
                      f"{mode!r}; the parallel rows must measure the "
                      f"in-place (two-pass) emission path")
                failed = True

    if require_speedup is not None:
        hw = int(new_doc.get("hardware_concurrency", 0))
        if hw < 4:
            print(f"speedup check skipped: only {hw} hardware thread(s)")
        else:
            # Every back-end rides the same driver template; all must
            # scale, and a missing row is a broken measurement, not a
            # skip.
            for backend in ("TPDE", "TPDE-A64", "TPDE-UIR"):
                p1 = new.get((backend, "parallel", 1))
                p4 = new.get((backend, "parallel", 4))
                if not p1 or not p4:
                    print(f"FAIL: speedup check requested but {backend} "
                          f"parallel rows for 1 and 4 threads are missing")
                    failed = True
                    continue
                m1, m4 = p1["funcs_per_sec"], p4["funcs_per_sec"]
                s1 = p1.get("funcs_per_sec_stddev", 0.0)
                s4 = p4.get("funcs_per_sec_stddev", 0.0)
                speedup = m4 / m1
                # Same noise-awareness as the drop checks: propagate the
                # two rows' relative errors into a sigma-scaled slack so a
                # noisy shared-runner sample cannot hard-fail an unrelated
                # PR.
                slack = sigmas * speedup * math.sqrt(
                    (s1 / m1) ** 2 + (s4 / m4) ** 2) if m1 > 0 and m4 > 0 \
                    else 0.0
                print(f"{backend} parallel speedup @4 threads: {speedup:.2f}x "
                      f"(+/-{slack:.2f} noise slack, required "
                      f"{require_speedup:.2f}x, hw threads {hw})")
                if speedup + slack < require_speedup:
                    print(f"FAIL: {backend} parallel speedup below "
                          f"requirement")
                    failed = True

    # Zero-merge acceptance: on a machine with >= 4 hardware threads, the
    # 10k-function parallel compile at 4 threads must beat the serial
    # fresh compile of the same module — the whole point of reserving
    # slices and placing bytes in parallel is that the serial remainder
    # (reserve + stitch) is too small to eat the scaling win. Compared
    # with the same sigma-scaled noise slack as the drop checks (the
    # rows use different clocks — wall vs cpu — which is exactly the
    # comparison a user cares about: time to finish).
    hw = int(new_doc.get("hardware_concurrency", 0))
    if hw < 4:
        print(f"parallel-vs-serial check skipped: only {hw} hardware "
              f"thread(s)")
    else:
        for backend in ("TPDE", "TPDE-A64", "TPDE-UIR"):
            serial = new.get((backend, "fresh_large", 0))
            par4 = new.get((backend, "parallel_large", 4))
            if not serial or not par4:
                print(f"FAIL: {backend} fresh_large/parallel_large@4 rows "
                      f"needed for the parallel-vs-serial check are missing")
                failed = True
                continue
            ms, mp = serial["funcs_per_sec"], par4["funcs_per_sec"]
            ss = serial.get("funcs_per_sec_stddev", 0.0)
            sp = par4.get("funcs_per_sec_stddev", 0.0)
            slack = sigmas * math.sqrt(ss * ss + sp * sp)
            verdict = "ok"
            if mp + slack < ms:
                verdict = "REGRESSION"
                failed = True
            print(f"{backend} parallel_large@4 {mp:.0f} f/s vs fresh_large "
                  f"{ms:.0f} f/s (slack {slack:.0f}, hw {hw})  {verdict}")

    if failed:
        print("benchmark regression gate: FAILED")
        return 1
    print("benchmark regression gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
