#!/usr/bin/env python3
"""tpde_lint.py - the project-invariant linter.

Statically enforces repo invariants that are written down in the docs but
invisible to the compiler and to clang's thread-safety analysis:

  raw-sync        No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::condition_variable / std::thread
                  (and no <mutex>/<condition_variable>/<thread>/<shared_mutex>
                  includes) outside support/Sync.h. The thread-safety
                  annotations only see locks that go through the annotated
                  wrappers (docs/STATIC_ANALYSIS.md).
  local-static    No function-local `static` (except static_assert and
                  `static constexpr`) or function-local `thread_local` in
                  src/. Mutable function-local statics are the PR 1
                  copypatch bug class: hidden cross-compile state that
                  breaks the determinism contract and adds guard-variable
                  checks to hot paths.
  hot-path-alloc  In files carrying a `// tpde-lint: hot-path` marker: no
                  naked new / malloc / calloc / realloc and no allocating
                  std:: container types (vector, string, maps, sets,
                  deque, list, function). These files claim the
                  docs/PERF.md zero-steady-state-allocation policy; they
                  must use the support/ primitives (Arena, SmallVector,
                  DenseMap, ...) whose reuse discipline the policy audits.
  banned-api      No rand()/srand() anywhere (tpde::Rng is the seeded,
                  deterministic source) and no std::this_thread::sleep_for
                  / sleep_until outside src/service/ (time-based waits in
                  compile paths hide ordering bugs; the service layer's
                  backoff sleeps are policy, not synchronization).

Suppressions (each names the rule it silences, so grep finds them all):

  // tpde-lint: allow(<rule>)       - this line and the next
  // tpde-lint: allow-file(<rule>)  - whole file

Matching runs on comment- and string-stripped text, so prose mentioning
std::mutex does not trip the linter (the directives above are extracted
before stripping).

Exit status: 0 clean, 1 findings, 2 usage/internal error.

--self-test runs the fixture corpus under tests/static_analysis/lint_fixtures/
(every *_bad.* file must produce exactly the rule set named by its
`// tpde-lint-expect: <rule>` lines; every *_ok.* file must be clean) and
then the real-tree scan, which must also be clean.
"""

import argparse
import re
import sys
from pathlib import Path

RULES = ("raw-sync", "local-static", "hot-path-alloc", "banned-api")

DIRECTIVE_RE = re.compile(r"//\s*tpde-lint:\s*(allow(?:-file)?)\(([a-z-]+)\)")
MARKER_RE = re.compile(r"//\s*tpde-lint:\s*hot-path")
EXPECT_RE = re.compile(r"//\s*tpde-lint-expect:\s*([a-z-]+)")

RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|condition_variable_any|condition_variable|"
    r"jthread|thread)\b"
)
RAW_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](mutex|condition_variable|thread|shared_mutex)[>"]'
)
HOT_ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"std\s*::\s*(vector|string|unordered_map|unordered_set|map|set|"
    r"deque|list|function)\b"
)
RAND_RE = re.compile(r"\b(rand|srand)\s*\(")
SLEEP_RE = re.compile(r"std\s*::\s*this_thread\s*::\s*sleep_(for|until)\b")
LOCAL_STATIC_RE = re.compile(r"^\s*(static|thread_local)\b")
LOCAL_STATIC_OK_RE = re.compile(r"^\s*static\s+(constexpr\b|assert\s*\()|^\s*static_assert")

SCOPE_HEADER_CLASS_RE = re.compile(r"\b(class|struct|union|enum)\b")
SCOPE_HEADER_NS_RE = re.compile(r"\bnamespace\b|\bextern\s*$")
SCOPE_HEADER_CTRL_RE = re.compile(r"\b(if|else|for|while|do|switch|try|catch)\b")


def strip_comments_and_strings(text):
    """Replaces comments, string literals, and char literals with spaces,
    preserving line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append(re.sub(r"[^\n]", " ", seg))
            i = j + 2
        elif c == '"' or c == "'":
            # Raw strings are not used in the tree; handle escaped quotes.
            q = c
            j = i + 1
            while j < n and text[j] != q:
                j += 2 if text[j] == "\\" else 1
            out.append(q + " " * (j - i - 1) + (q if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scope_kinds_per_line(stripped):
    """Returns, per line, the scope kind ('top'|'ns'|'class'|'fn') in
    effect at the start of that line, via lightweight brace tracking."""
    kinds = []
    stack = []  # entries: 'ns' | 'class' | 'fn'
    header = []  # text since the last ; { } — the candidate scope header
    lines = stripped.split("\n")
    for line in lines:
        kinds.append(stack[-1] if stack else "top")
        body = line
        if body.lstrip().startswith("#"):
            continue  # preprocessor lines don't open C++ scopes
        for ch in body:
            if ch == "{":
                htext = "".join(header).strip()
                parent = stack[-1] if stack else "top"
                if SCOPE_HEADER_CLASS_RE.search(htext) and not htext.endswith("="):
                    kind = "class"
                elif SCOPE_HEADER_NS_RE.search(htext):
                    kind = "ns"
                elif htext.endswith(")") or htext.endswith("]"):
                    kind = "fn"
                elif SCOPE_HEADER_CTRL_RE.search(htext) or parent == "fn":
                    kind = "fn"
                elif htext.endswith("=") or htext.endswith(",") or not htext:
                    kind = parent  # initializer braces: stay in scope
                else:
                    kind = parent
                stack.append(kind)
                header = []
            elif ch == "}":
                if stack:
                    stack.pop()
                header = []
            elif ch in ";":
                header = []
            else:
                header.append(ch)
        header.append(" ")
    return kinds


class Finding:
    def __init__(self, path, line, rule, msg):
        self.path, self.line, self.rule, self.msg = path, line, rule, msg

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def lint_file(path, text, rel):
    raw_lines = text.split("\n")
    # Directives are extracted from the raw text (they live in comments).
    file_allow = set()
    line_allow = {}  # line number (1-based) -> set of rules
    hot_path = False
    for ln, line in enumerate(raw_lines, 1):
        if MARKER_RE.search(line):
            hot_path = True
        for kind, rule in DIRECTIVE_RE.findall(line):
            if rule not in RULES:
                raise SystemExit(f"{rel}:{ln}: unknown lint rule '{rule}'")
            if kind == "allow-file":
                file_allow.add(rule)
            else:
                line_allow.setdefault(ln, set()).add(rule)
                line_allow.setdefault(ln + 1, set()).add(rule)

    stripped = strip_comments_and_strings(text)
    slines = stripped.split("\n")
    findings = []

    def report(ln, rule, msg):
        if rule in file_allow or rule in line_allow.get(ln, ()):  # suppressed
            return
        findings.append(Finding(rel, ln, rule, msg))

    is_sync_h = rel.replace("\\", "/").endswith("support/Sync.h")
    in_service = "/service/" in rel.replace("\\", "/")

    for ln, line in enumerate(slines, 1):
        if not is_sync_h:
            m = RAW_SYNC_RE.search(line) or RAW_INCLUDE_RE.search(line)
            if m:
                report(ln, "raw-sync",
                       f"raw '{m.group(0).strip()}' — use the annotated "
                       "wrappers in support/Sync.h")
        if hot_path:
            m = HOT_ALLOC_RE.search(line)
            if m:
                report(ln, "hot-path-alloc",
                       f"'{m.group(0).strip()}' in a hot-path file — the "
                       "zero-allocation policy (docs/PERF.md) requires the "
                       "support/ primitives here")
        m = RAND_RE.search(line)
        if m:
            report(ln, "banned-api",
                   f"'{m.group(0).strip()})' — use the seeded tpde::Rng "
                   "(determinism contract)")
        if not in_service:
            m = SLEEP_RE.search(line)
            if m:
                report(ln, "banned-api",
                       f"'{m.group(0).strip()}' outside src/service/ — "
                       "sleeps are not synchronization")

    kinds = scope_kinds_per_line(stripped)
    for ln, line in enumerate(slines, 1):
        if kinds[ln - 1] != "fn":
            continue
        if LOCAL_STATIC_RE.search(line) and not LOCAL_STATIC_OK_RE.search(line):
            report(ln, "local-static",
                   "function-local static/thread_local — hidden cross-"
                   "compile state (the PR 1 copypatch bug class); hoist it "
                   "into reused worker state")
    return findings


def scan_tree(root):
    findings = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = str(path.relative_to(root))
        findings.extend(lint_file(path, path.read_text(), rel))
    return findings


def self_test(root):
    fixtures = root / "tests" / "static_analysis" / "lint_fixtures"
    if not fixtures.is_dir():
        print(f"tpde_lint: fixture dir missing: {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    for path in sorted(fixtures.iterdir()):
        if path.suffix not in (".h", ".cpp"):
            continue
        text = path.read_text()
        rel = str(path.relative_to(root))
        expected = set(EXPECT_RE.findall(text))
        got = {f.rule for f in lint_file(path, text, rel)}
        if got != expected:
            print(f"tpde_lint self-test FAIL {rel}: expected rules "
                  f"{sorted(expected)}, got {sorted(got)}", file=sys.stderr)
            failures += 1
    tree = scan_tree(root)
    for f in tree:
        print(f"tpde_lint self-test FAIL (tree not clean): {f}",
              file=sys.stderr)
    failures += len(tree)
    if failures:
        return 1
    print("tpde_lint self-test OK (fixtures flagged, tree clean)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture corpus, then the tree scan")
    args = ap.parse_args()
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"tpde_lint: no src/ under {root}", file=sys.stderr)
        return 2
    if args.self_test:
        return self_test(root)
    findings = scan_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"tpde_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("tpde_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
