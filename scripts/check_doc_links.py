#!/usr/bin/env python3
"""Markdown link check: every relative link and inline `path` reference
in docs/*.md and README.md must resolve inside the repo.

Checked:
  * markdown links  [text](target)  — relative targets only (http(s):
    and mailto: are skipped; anchors are stripped before resolving);
  * backtick path spans that look like repo files, e.g. `src/uir/UIR.h`
    or `scripts/check_bench_regression.py` — docs cite sources heavily,
    and a renamed file silently rots those citations.

Targets resolve relative to the referencing file's directory first, then
the repo root (docs conventionally cite root-relative paths). Exits 1
listing every dangling reference.

Usage: check_doc_links.py [repo_root]
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/like.this` with a slash and an extension — not code spans.
PATH_RE = re.compile(r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+\.[A-Za-z0-9]{1,4})`")


def main(argv):
    root = pathlib.Path(argv[1] if len(argv) > 1 else ".").resolve()
    files = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    bad = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        refs = [m.group(1) for m in LINK_RE.finditer(text)]
        refs += [m.group(1) for m in PATH_RE.finditer(text)]
        for ref in refs:
            if ref.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = ref.split("#", 1)[0]
            if not target:
                continue
            if not ((md.parent / target).exists() or (root / target).exists()):
                bad.append(f"{md.relative_to(root)}: dangling reference '{ref}'")
    for b in bad:
        print(b)
    if bad:
        print(f"doc link check: FAILED ({len(bad)} dangling reference(s))")
        return 1
    print(f"doc link check: passed ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
